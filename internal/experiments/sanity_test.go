package experiments

import (
	"strings"
	"testing"

	"dpspark/internal/cluster"
	"dpspark/internal/core"
	"dpspark/internal/simtime"
)

// Monotonicity properties of the whole model stack: physically sensible
// directions that must hold regardless of calibration constants.

func TestMoreNodesNeverSlower(t *testing.T) {
	base := Cell{Bench: FW, N: 8192, Driver: core.IM, Block: 512,
		Recursive: true, RShared: 4, Threads: 8}
	c16 := Run(base)
	big := base
	big.Cluster = cluster.Skylake16().WithNodes(64)
	c64 := Run(big)
	if c64.Time >= c16.Time {
		t.Fatalf("64 nodes (%v) must beat 16 nodes (%v)", c64.Time, c16.Time)
	}
}

func TestSlowerDiskHurtsIMMoreThanCB(t *testing.T) {
	slow := cluster.Skylake16()
	slow.Node.Disk.ReadBW /= 16
	slow.Node.Disk.WriteBW /= 16

	run := func(cl *cluster.Cluster, driver core.DriverKind) simtime.Duration {
		return Run(Cell{Cluster: cl, Bench: FW, N: 8192, Driver: driver, Block: 512}).Time
	}
	imPenalty := run(slow, core.IM).Seconds() / run(cluster.Skylake16(), core.IM).Seconds()
	cbPenalty := run(slow, core.CB).Seconds() / run(cluster.Skylake16(), core.CB).Seconds()
	if imPenalty <= cbPenalty {
		t.Fatalf("slow staging disks must hurt the shuffle-heavy IM driver more: IM %.2f× vs CB %.2f×",
			imPenalty, cbPenalty)
	}
}

func TestBiggerProblemTakesLonger(t *testing.T) {
	small := Run(Cell{Bench: GE, N: 8192, Driver: core.CB, Block: 512})
	big := Run(Cell{Bench: GE, N: 16384, Driver: core.CB, Block: 512})
	// 2× n is 8× work, but at these sizes per-iteration driver/stage
	// overheads (which only double) still dominate GE; require a clear
	// super-linear gap without overfitting the split.
	if big.Time < 2*small.Time {
		t.Fatalf("16K (%v) must cost ≫ 8K (%v)", big.Time, small.Time)
	}
}

func TestFasterNetworkHelpsIM(t *testing.T) {
	fast := cluster.Skylake16()
	fast.Net.BandwidthBps *= 10
	slow := Run(Cell{Bench: FW, N: 8192, Driver: core.IM, Block: 256})
	quick := Run(Cell{Cluster: fast, Bench: FW, N: 8192, Driver: core.IM, Block: 256})
	if quick.Time >= slow.Time {
		t.Fatalf("10× network must help the IM driver: %v vs %v", quick.Time, slow.Time)
	}
}

func TestGEBenefitsFromCBAsGridShrinks(t *testing.T) {
	// The pivot-copy volume grows with the grid: the IM→CB gain for GE
	// must grow as blocks shrink (more iterations, more copies).
	gap := func(block int) float64 {
		im := Run(Cell{Bench: GE, Driver: core.IM, Block: block})
		cb := Run(Cell{Bench: GE, Driver: core.CB, Block: block})
		return im.Time.Seconds() / cb.Time.Seconds()
	}
	coarse := gap(2048)
	fine := gap(512)
	if fine <= coarse {
		t.Fatalf("IM→CB gain must grow as blocks shrink: b512 %.2f× vs b2048 %.2f×", fine, coarse)
	}
}

func TestBreakdownStringMentionsCategories(t *testing.T) {
	r := Run(Cell{Bench: FW, N: 4096, Driver: core.IM, Block: 512})
	s := r.BreakdownString()
	for _, want := range []string{"compute=", "disk=", "net=", "overhead="} {
		if !strings.Contains(s, want) {
			t.Fatalf("breakdown %q missing %q", s, want)
		}
	}
}
