package experiments

import (
	"fmt"

	"dpspark/internal/core"
	"dpspark/internal/report"
)

// tableGridCores and tableGridThreads are the axes of Tables I–II.
var (
	tableGridCores   = []int{32, 16, 8, 4, 2, 1}
	tableGridThreads = []int{2, 4, 8, 16, 32}
)

// TableI regenerates Table I: GE on the Skylake cluster, CB driver,
// 4-way recursive kernels, 32K problem with 1K blocks, swept over
// executor-cores × OMP_NUM_THREADS. n=0 runs the paper size.
func TableI(n int) (*report.Table, []Result) {
	return threadGrid("Table I: GE, CB driver, 4-way recursive kernels, block 1K (seconds)",
		Cell{Bench: GE, N: n, Driver: core.CB, Block: 1024, Recursive: true, RShared: 4})
}

// TableII regenerates Table II: FW-APSP, IM driver, 16-way recursive
// kernels, 32K problem with 1K blocks, over the same grid.
func TableII(n int) (*report.Table, []Result) {
	return threadGrid("Table II: FW-APSP, IM driver, 16-way recursive kernels, block 1K (seconds)",
		Cell{Bench: FW, N: n, Driver: core.IM, Block: 1024, Recursive: true, RShared: 16})
}

// threadGrid sweeps the shared grid of the two tables.
func threadGrid(title string, base Cell) (*report.Table, []Result) {
	rows := make([]string, len(tableGridThreads))
	for i, th := range tableGridThreads {
		rows[i] = fmt.Sprintf("%d", th)
	}
	cols := make([]string, len(tableGridCores))
	for i, c := range tableGridCores {
		cols[i] = fmt.Sprintf("%d", c)
	}
	t := report.NewTable(title, "OMP\\cores", rows, cols)
	var results []Result
	for ri, th := range tableGridThreads {
		for ci, cores := range tableGridCores {
			cell := base
			cell.Threads = th
			cell.ExecutorCores = cores
			r := Run(cell)
			results = append(results, r)
			if note := r.Note(); note != "" {
				t.Set(ri, ci, note)
			} else {
				t.Set(ri, ci, report.Seconds(r.Time, false))
			}
		}
	}
	return t, results
}
