package experiments

import (
	"testing"

	"dpspark/internal/cluster"
	"dpspark/internal/core"
	"dpspark/internal/mpifw"
)

// TestMPIOutperformsSpark reproduces the related-work comparison (§III):
// the communication-efficient MPI-style solver beats even the best Spark
// configuration at paper scale — the framework overheads (shuffle
// staging, task scheduling, serialization, driver round trips) are the
// difference, roughly the 3.1–17.7× Anderson et al. report for
// offloading Spark workloads to MPI.
func TestMPIOutperformsSpark(t *testing.T) {
	cl := cluster.Skylake16()
	mpi := mpifw.ModelTime(cl, PaperN, mpifw.Config{
		BlockSize: 1024, Recursive: true, RShared: 16, Threads: 8,
	})
	spark := Run(Cell{
		Bench: FW, Driver: core.IM, Block: 1024,
		Recursive: true, RShared: 16, Threads: 8,
	})
	if spark.Err != nil {
		t.Fatal(spark.Err)
	}
	ratio := spark.Time.Seconds() / mpi.Seconds()
	if ratio < 1.5 {
		t.Fatalf("MPI-style solver should clearly beat Spark: %v vs %v (%.1f×)",
			mpi, spark.Time, ratio)
	}
	if ratio > 30 {
		t.Fatalf("gap implausibly large: %v vs %v (%.1f×)", mpi, spark.Time, ratio)
	}
	t.Logf("MPI-style %v vs Spark %v → %.1f× (related work: 3.1–17.7×)", mpi, spark.Time, ratio)
}
