package store

import (
	"encoding/binary"
	"hash/crc32"
)

// Record framing for append-only journals. Each frame is
//
//	u32 magic "DPJ1" | u32 crc32c(payload) | u32 len(payload) | payload
//
// (little-endian), the same Castagnoli checksum the block and checkpoint
// files use. Frames are meant to be appended to a single file and read
// back sequentially after a crash: a reader walks NextFrame until the
// first error, keeps everything before it, and drops the rest — a torn
// tail (the normal state after SIGKILL mid-append) surfaces as
// *CorruptError{Torn: true}, a damaged record as a checksum mismatch.
// The serve job journal is the first consumer.

// frameMagic marks one framed journal record ("DPJ1").
const frameMagic = 0x44504a31

// FrameHeaderLen is the fixed per-frame overhead: magic + crc + length.
const FrameHeaderLen = 4 + 4 + 4

// MaxFramePayload bounds one frame's payload (1 GiB) so a corrupted
// length field cannot drive a reader into a giant allocation.
const MaxFramePayload = 1 << 30

// AppendFrame appends one CRC32C-framed record to buf and returns the
// extended slice (append semantics — buf may be nil).
func AppendFrame(buf, payload []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, frameMagic)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, crcTable))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	return append(buf, payload...)
}

// NextFrame splits the first frame off data, returning its payload and
// the remaining bytes. Short data is a torn tail (*CorruptError with
// Torn), a bad magic, oversized length or checksum mismatch is a
// corrupt frame (*CorruptError without Torn). The returned payload
// aliases data.
func NextFrame(data []byte) (payload, rest []byte, err error) {
	if len(data) < FrameHeaderLen {
		return nil, nil, &CorruptError{Key: "frame", Torn: true}
	}
	if binary.LittleEndian.Uint32(data) != frameMagic {
		return nil, nil, &CorruptError{Key: "frame"}
	}
	want := binary.LittleEndian.Uint32(data[4:])
	n := binary.LittleEndian.Uint32(data[8:])
	if n > MaxFramePayload {
		return nil, nil, &CorruptError{Key: "frame"}
	}
	if uint32(len(data)-FrameHeaderLen) < n {
		return nil, nil, &CorruptError{Key: "frame", Torn: true}
	}
	payload = data[FrameHeaderLen : FrameHeaderLen+int(n)]
	if crc32.Checksum(payload, crcTable) != want {
		return nil, nil, &CorruptError{Key: "frame"}
	}
	return payload, data[FrameHeaderLen+int(n):], nil
}

// ReadFrames walks data frame by frame and returns every intact payload
// before the first damaged or torn one, plus how many bytes of data
// those frames consumed. It never fails: after a crash the caller keeps
// the intact prefix and drops the tail, which is exactly the append-only
// journal recovery contract.
func ReadFrames(data []byte) (payloads [][]byte, consumed int) {
	rest := data
	for len(rest) > 0 {
		p, r, err := NextFrame(rest)
		if err != nil {
			break
		}
		payloads = append(payloads, p)
		rest = r
	}
	return payloads, len(data) - len(rest)
}
