package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"dpspark/internal/obs"
)

func open(t *testing.T, budget int64, reg *obs.Registry) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), Options{MemoryBudget: budget, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustGet(t *testing.T, s *Store, key string, want []byte) {
	t.Helper()
	got, err := s.Get(key)
	if err != nil {
		t.Fatalf("Get(%q): %v", key, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("Get(%q) = %x, want %x", key, got, want)
	}
}

func TestStoreRoundTrip(t *testing.T) {
	s := open(t, 0, nil)
	payloads := map[string][]byte{
		"shuffle/3/p0": []byte("alpha"),
		"shuffle/3/p1": {},
		"bc/1":         bytes.Repeat([]byte{0xAB}, 4096),
	}
	for k, v := range payloads {
		if err := s.Put(k, v); err != nil {
			t.Fatal(err)
		}
	}
	for k, v := range payloads {
		mustGet(t, s, k, v)
		if !s.InMemory(k) {
			t.Fatalf("%q spilled under unbounded budget", k)
		}
	}
	if _, err := s.Get("missing"); err == nil {
		t.Fatal("Get of unknown key must error")
	}
	if s.Has("missing") {
		t.Fatal("Has(missing) = true")
	}
}

func TestStoreEvictionUnderBudget(t *testing.T) {
	reg := obs.NewRegistry()
	s := open(t, 256, reg)
	blk := func(i int) []byte { return bytes.Repeat([]byte{byte(i)}, 100) }
	for i := 0; i < 5; i++ {
		if err := s.Put(fmt.Sprintf("b/%d", i), blk(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Settle the async spill writer so SpillWall covers every queued write.
	s.Flush()
	st := s.Stats()
	if st.MemBytes > 256 {
		t.Fatalf("memory tier %d bytes over budget 256", st.MemBytes)
	}
	if st.Evicted == 0 || st.Spilled == 0 {
		t.Fatalf("expected evictions and spills, got %+v", st)
	}
	if got := reg.CounterTotal("dpspark_evicted_blocks_total"); got != st.Evicted {
		t.Fatalf("evicted counter %d != stats %d", got, st.Evicted)
	}
	if got := reg.CounterTotal("dpspark_spilled_blocks_total"); got != st.Spilled {
		t.Fatalf("spilled counter %d != stats %d", got, st.Spilled)
	}
	// Every block — memory- or disk-resident — must read back exactly.
	for i := 0; i < 5; i++ {
		mustGet(t, s, fmt.Sprintf("b/%d", i), blk(i))
	}
	// LRU order: b/0 was written first and never touched before the
	// re-reads above, so it must have been among the spilled ones.
	if s.InMemory("b/0") {
		t.Fatal("oldest block survived eviction in memory")
	}
	if st.SpillWall <= 0 {
		t.Fatalf("spill wall time not recorded: %v", st.SpillWall)
	}
}

func TestStoreSingleBlockOverBudget(t *testing.T) {
	s := open(t, 10, nil)
	big := bytes.Repeat([]byte{7}, 100)
	if err := s.Put("big", big); err != nil {
		t.Fatal(err)
	}
	if s.InMemory("big") {
		t.Fatal("block larger than the whole budget stayed in memory")
	}
	mustGet(t, s, "big", big)
}

func TestStoreCorruptionDetected(t *testing.T) {
	for _, torn := range []bool{false, true} {
		t.Run(fmt.Sprintf("torn=%v", torn), func(t *testing.T) {
			reg := obs.NewRegistry()
			s := open(t, 0, reg)
			if err := s.Put("x", []byte("some block payload")); err != nil {
				t.Fatal(err)
			}
			if !s.Corrupt("x", torn) {
				t.Fatal("Corrupt returned false")
			}
			if s.InMemory("x") {
				t.Fatal("corrupted block still memory-resident")
			}
			_, err := s.Get("x")
			ce, ok := err.(*CorruptError)
			if !ok {
				t.Fatalf("Get after Corrupt: err = %v, want *CorruptError", err)
			}
			if ce.Torn != torn {
				t.Fatalf("Torn = %v, want %v", ce.Torn, torn)
			}
			if got := reg.CounterTotal("dpspark_corrupt_blocks_detected_total"); got != 1 {
				t.Fatalf("corrupt counter = %d, want 1", got)
			}
			// Recovery path: recompute overwrites the damaged block.
			if err := s.Put("x", []byte("recomputed")); err != nil {
				t.Fatal(err)
			}
			mustGet(t, s, "x", []byte("recomputed"))
		})
	}
}

func TestStoreCorruptUnknownKey(t *testing.T) {
	s := open(t, 0, nil)
	if s.Corrupt("nope", false) {
		t.Fatal("Corrupt of unknown key returned true")
	}
}

func TestStoreDeleteAndPrefix(t *testing.T) {
	s := open(t, 0, nil)
	for _, k := range []string{"sh/1/a", "sh/1/b", "sh/2/a", "bc/1"} {
		if err := s.Put(k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Spill("sh/1/a"); err != nil { // one victim on disk
		t.Fatal(err)
	}
	if n := s.DeletePrefix("sh/1/"); n != 2 {
		t.Fatalf("DeletePrefix removed %d, want 2", n)
	}
	if got := s.Keys("sh/"); len(got) != 1 || got[0] != "sh/2/a" {
		t.Fatalf("Keys(sh/) = %v", got)
	}
	s.Delete("bc/1")
	if s.Has("bc/1") {
		t.Fatal("deleted key still present")
	}
	// The spilled victim's file must be gone too.
	files, _ := filepath.Glob(filepath.Join(s.Dir(), "*.blk"))
	if len(files) != 0 {
		t.Fatalf("stray spill files after delete: %v", files)
	}
	st := s.Stats()
	if st.DiskBlocks != 0 || st.DiskBytes != 0 {
		t.Fatalf("disk tier not empty after deletes: %+v", st)
	}
}

func TestStoreKeySanitization(t *testing.T) {
	s := open(t, 0, nil)
	keys := []string{"a/b", "a_b", "a%2fb", "weird key\n!", "ünïcode"}
	for i, k := range keys {
		if err := s.Put(k, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		if err := s.Spill(k); err != nil {
			t.Fatal(err)
		}
	}
	// Injective mapping: every key must land in a distinct file and read
	// back its own payload.
	for i, k := range keys {
		mustGet(t, s, k, []byte{byte(i)})
	}
	files, _ := filepath.Glob(filepath.Join(s.Dir(), "*.blk"))
	if len(files) != len(keys) {
		t.Fatalf("%d spill files for %d keys", len(files), len(keys))
	}
}

func TestStoreConcurrent(t *testing.T) {
	s := open(t, 2048, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := fmt.Sprintf("g%d/k%d", g, i%10)
				payload := bytes.Repeat([]byte{byte(g)}, 64+i)
				if err := s.Put(k, payload); err != nil {
					panic(err)
				}
				if got, err := s.Get(k); err == nil && len(got) > 0 && got[0] != byte(g) {
					panic("cross-goroutine payload mixup")
				}
				s.Keys(fmt.Sprintf("g%d/", g))
			}
		}(g)
	}
	wg.Wait()
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	meta := []byte(`{"iter":3}`)
	blocks := bytes.Repeat([]byte{0x5A}, 1000)
	if err := WriteCheckpoint(dir, 3, meta, blocks); err != nil {
		t.Fatal(err)
	}
	m, b, err := ReadCheckpoint(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(m, meta) || !bytes.Equal(b, blocks) {
		t.Fatal("checkpoint round trip mismatch")
	}
	// Overwrite with new content at the same id.
	if err := WriteCheckpoint(dir, 3, []byte(`{"iter":3,"v":2}`), blocks); err != nil {
		t.Fatal(err)
	}
	m, _, err = ReadCheckpoint(dir, 3)
	if err != nil || !bytes.Contains(m, []byte(`"v":2`)) {
		t.Fatalf("overwrite not visible: %s %v", m, err)
	}
}

func TestLatestCheckpointSkipsDamaged(t *testing.T) {
	dir := t.TempDir()
	for id := 1; id <= 3; id++ {
		meta := []byte(fmt.Sprintf(`{"iter":%d}`, id))
		if err := WriteCheckpoint(dir, id, meta, []byte("blocks")); err != nil {
			t.Fatal(err)
		}
	}
	// Tear checkpoint 3 and bit-flip checkpoint 2; only 1 stays valid.
	p3 := ckptFile(dir, 3)
	info, _ := os.Stat(p3)
	if err := os.Truncate(p3, info.Size()/2); err != nil {
		t.Fatal(err)
	}
	p2 := ckptFile(dir, 2)
	raw, _ := os.ReadFile(p2)
	raw[len(raw)-6] ^= 0xFF
	if err := os.WriteFile(p2, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	id, meta, _, ok := LatestCheckpoint(dir)
	if !ok || id != 1 {
		t.Fatalf("LatestCheckpoint = %d ok=%v, want 1 true", id, ok)
	}
	if !bytes.Contains(meta, []byte(`"iter":1`)) {
		t.Fatalf("meta = %s", meta)
	}

	if _, _, err := ReadCheckpoint(dir, 3); err == nil {
		t.Fatal("torn checkpoint read must error")
	} else if ce, ok := err.(*CorruptError); !ok || !ce.Torn {
		t.Fatalf("err = %v, want torn *CorruptError", err)
	}
	if _, _, err := ReadCheckpoint(dir, 2); err == nil {
		t.Fatal("bit-flipped checkpoint read must error")
	}
}

func TestLatestCheckpointEmpty(t *testing.T) {
	if _, _, _, ok := LatestCheckpoint(t.TempDir()); ok {
		t.Fatal("empty dir reported a checkpoint")
	}
	if _, _, _, ok := LatestCheckpoint(filepath.Join(t.TempDir(), "nope")); ok {
		t.Fatal("missing dir reported a checkpoint")
	}
	if ids := ListCheckpoints(t.TempDir()); len(ids) != 0 {
		t.Fatalf("ListCheckpoints on empty dir = %v", ids)
	}
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open("", Options{}); err == nil {
		t.Fatal("Open with empty dir must error")
	}
	// A file where the dir should be is not creatable.
	base := t.TempDir()
	f := filepath.Join(base, "occupied")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(filepath.Join(f, "sub"), Options{}); err == nil {
		t.Fatal("Open under a regular file must error")
	}
}
