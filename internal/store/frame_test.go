package store

import (
	"bytes"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	records := [][]byte{
		[]byte("first"),
		{}, // empty payloads are legal records
		[]byte(`{"type":"admitted","job":"job-1"}`),
		bytes.Repeat([]byte{0xAB}, 4096),
	}
	var buf []byte
	for _, r := range records {
		buf = AppendFrame(buf, r)
	}
	got, consumed := ReadFrames(buf)
	if consumed != len(buf) {
		t.Fatalf("consumed %d of %d bytes", consumed, len(buf))
	}
	if len(got) != len(records) {
		t.Fatalf("decoded %d records, want %d", len(got), len(records))
	}
	for i := range records {
		if !bytes.Equal(got[i], records[i]) {
			t.Fatalf("record %d: got %q want %q", i, got[i], records[i])
		}
	}
}

func TestFrameTornTailDropsOnlyTail(t *testing.T) {
	var buf []byte
	for _, r := range [][]byte{[]byte("aaaa"), []byte("bbbb"), []byte("cccc")} {
		buf = AppendFrame(buf, r)
	}
	frameLen := len(buf) / 3
	// Every truncation point: full frames before the cut survive, the
	// torn frame and everything after it are dropped.
	for cut := 0; cut < len(buf); cut++ {
		got, consumed := ReadFrames(buf[:cut])
		wantN := cut / frameLen
		if len(got) != wantN {
			t.Fatalf("cut %d: decoded %d records, want %d", cut, len(got), wantN)
		}
		if consumed != wantN*frameLen {
			t.Fatalf("cut %d: consumed %d, want %d", cut, consumed, wantN*frameLen)
		}
	}
	// NextFrame reports the torn tail explicitly.
	if _, _, err := NextFrame(buf[frameLen : frameLen+3]); err == nil {
		t.Fatal("torn second frame decoded")
	} else if ce, ok := err.(*CorruptError); !ok || !ce.Torn {
		t.Fatalf("torn tail error = %v, want *CorruptError{Torn}", err)
	}
}

func TestFrameBitFlipStopsReplay(t *testing.T) {
	var buf []byte
	for _, r := range [][]byte{[]byte("aaaa"), []byte("bbbb"), []byte("cccc")} {
		buf = AppendFrame(buf, r)
	}
	frameLen := len(buf) / 3
	// Flip one byte in every position of the middle frame: the first
	// record always survives, the flipped one and the tail never decode
	// as valid records beyond it (a payload flip kills the CRC, a header
	// flip kills magic/len/crc).
	for off := frameLen; off < 2*frameLen; off++ {
		bad := append([]byte(nil), buf...)
		bad[off] ^= 0x01
		got, _ := ReadFrames(bad)
		if len(got) < 1 || !bytes.Equal(got[0], []byte("aaaa")) {
			t.Fatalf("flip at %d lost the intact leading record", off)
		}
		if len(got) > 1 && !bytes.Equal(got[1], []byte("bbbb")) {
			t.Fatalf("flip at %d decoded a damaged record as %q", off, got[1])
		}
	}
}

func TestFrameGarbageAndBounds(t *testing.T) {
	if _, _, err := NextFrame(nil); err == nil {
		t.Fatal("nil input decoded")
	}
	if _, _, err := NextFrame([]byte("not a frame at all")); err == nil {
		t.Fatal("garbage decoded")
	}
	// A frame header claiming an absurd length must fail cleanly rather
	// than drive an allocation.
	huge := AppendFrame(nil, []byte("x"))
	huge[8], huge[9], huge[10], huge[11] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, _, err := NextFrame(huge); err == nil {
		t.Fatal("oversized length decoded")
	}
	got, consumed := ReadFrames(nil)
	if len(got) != 0 || consumed != 0 {
		t.Fatalf("empty journal decoded %d records", len(got))
	}
}
