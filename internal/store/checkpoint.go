package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

// Driver checkpoints: each file snapshots the run at one CheckpointEvery
// boundary — a meta section (JSON: iteration cursor, problem shape,
// engine/fault-plan state) and a blocks section (every tile of the grid
// through the matrix codec). Files are written to a temp name and
// renamed into place, so a checkpoint either exists completely or not at
// all; both sections carry their own CRC32C so a file damaged after the
// rename is skipped by LatestCheckpoint rather than resumed from.
//
// Layout (little-endian):
//
//	u32 magic "DPCK"
//	u32 metaLen   | meta bytes   | u32 crc32c(meta)
//	u64 blocksLen | blocks bytes | u32 crc32c(blocks)

// ckptMagic marks a checkpoint file ("DPCK").
const ckptMagic = 0x4450434b

// ckptPrefix names checkpoint files ckpt-%06d.ck so ListCheckpoints can
// find them and sort numerically.
const (
	ckptPrefix = "ckpt-"
	ckptSuffix = ".ck"
)

// ckptFile returns the checkpoint path for id under dir.
func ckptFile(dir string, id int) string {
	return filepath.Join(dir, fmt.Sprintf("%s%06d%s", ckptPrefix, id, ckptSuffix))
}

// WriteCheckpoint atomically persists checkpoint id (an iteration
// boundary) under dir. An existing checkpoint with the same id is
// replaced atomically.
func WriteCheckpoint(dir string, id int, meta, blocks []byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: checkpoint dir %s: %w", dir, err)
	}
	buf := make([]byte, 0, 4+4+len(meta)+4+8+len(blocks)+4)
	buf = binary.LittleEndian.AppendUint32(buf, ckptMagic)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(meta)))
	buf = append(buf, meta...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(meta, crcTable))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(blocks)))
	buf = append(buf, blocks...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(blocks, crcTable))

	final := ckptFile(dir, id)
	tmp, err := os.CreateTemp(dir, ".tmp-ckpt-*")
	if err != nil {
		return fmt.Errorf("store: checkpoint temp: %w", err)
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: checkpoint write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: checkpoint close: %w", err)
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: checkpoint rename: %w", err)
	}
	return nil
}

// ReadCheckpoint loads and verifies checkpoint id from dir. Damaged
// files return *CorruptError.
func ReadCheckpoint(dir string, id int) (meta, blocks []byte, err error) {
	key := fmt.Sprintf("checkpoint %d", id)
	raw, err := os.ReadFile(ckptFile(dir, id))
	if err != nil {
		return nil, nil, fmt.Errorf("store: %s: %w", key, err)
	}
	if len(raw) < 8 || binary.LittleEndian.Uint32(raw) != ckptMagic {
		return nil, nil, &CorruptError{Key: key}
	}
	metaLen := int64(binary.LittleEndian.Uint32(raw[4:]))
	rest := raw[8:]
	if int64(len(rest)) < metaLen+4 {
		return nil, nil, &CorruptError{Key: key, Torn: true}
	}
	meta = rest[:metaLen]
	if crc32.Checksum(meta, crcTable) != binary.LittleEndian.Uint32(rest[metaLen:]) {
		return nil, nil, &CorruptError{Key: key}
	}
	rest = rest[metaLen+4:]
	if len(rest) < 8 {
		return nil, nil, &CorruptError{Key: key, Torn: true}
	}
	blocksLen := int64(binary.LittleEndian.Uint64(rest))
	rest = rest[8:]
	if int64(len(rest)) != blocksLen+4 {
		return nil, nil, &CorruptError{Key: key, Torn: true}
	}
	blocks = rest[:blocksLen]
	if crc32.Checksum(blocks, crcTable) != binary.LittleEndian.Uint32(rest[blocksLen:]) {
		return nil, nil, &CorruptError{Key: key}
	}
	return meta, blocks, nil
}

// ListCheckpoints returns the checkpoint ids present under dir in
// ascending order (existence only — they are not verified here).
func ListCheckpoints(dir string) []int {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var ids []int
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || len(name) <= len(ckptPrefix)+len(ckptSuffix) {
			continue
		}
		var id int
		if _, err := fmt.Sscanf(name, ckptPrefix+"%d"+ckptSuffix, &id); err == nil {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids
}

// GCCheckpoints enforces keep-last-K retention on dir's checkpoint
// files: the newest `keep` checkpoints that pass full verification are
// retained, and only files strictly older than the oldest retained one
// are deleted — an older file is never removed before a newer one has
// verified, so a crash at any point during GC leaves a resumable set.
// Damaged files newer than the oldest retained checkpoint also survive
// (for post-mortem; LatestCheckpoint skips them anyway). keep <= 0
// keeps everything. Returns the ids deleted.
func GCCheckpoints(dir string, keep int) []int {
	if keep <= 0 {
		return nil
	}
	ids := ListCheckpoints(dir)
	intact, oldestKept := 0, -1
	for i := len(ids) - 1; i >= 0 && intact < keep; i-- {
		if _, _, err := ReadCheckpoint(dir, ids[i]); err == nil {
			intact++
			oldestKept = ids[i]
		}
	}
	if intact < keep || oldestKept < 0 {
		return nil // fewer intact checkpoints than the retention asks for
	}
	var deleted []int
	for _, id := range ids {
		if id >= oldestKept {
			break
		}
		if os.Remove(ckptFile(dir, id)) == nil {
			deleted = append(deleted, id)
		}
	}
	return deleted
}

// LatestCheckpoint returns the newest checkpoint under dir that passes
// verification, skipping torn or corrupt files (a crash mid-write leaves
// only a temp file, but damage after rename is survivable too). ok is
// false when no usable checkpoint exists.
func LatestCheckpoint(dir string) (id int, meta, blocks []byte, ok bool) {
	ids := ListCheckpoints(dir)
	for i := len(ids) - 1; i >= 0; i-- {
		m, b, err := ReadCheckpoint(dir, ids[i])
		if err == nil {
			return ids[i], m, b, true
		}
	}
	return 0, nil, nil, false
}
