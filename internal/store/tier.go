package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"dpspark/internal/obs"
)

// Tier is the interface seam for a shared, *remote* block tier behind
// the local disk tier — the Sparkle-style storage layer executor loss
// cannot take down. Implementations carry the same CRC32C
// checksum-on-read = lost-block contract as the local disk tier: Get
// must return *CorruptError when the replica's bytes fail verification,
// never silent garbage. The local-FS implementation (FSTier) keeps the
// no-new-deps rule; an object-store client would slot in behind the
// same five methods.
type Tier interface {
	// Put durably stores a replica of data under key, replacing any
	// previous one.
	Put(key string, data []byte) error
	// Get returns a replica's verified bytes; *CorruptError when its
	// checksum fails, any other error when it is missing/unreadable.
	Get(key string) ([]byte, error)
	// Delete removes a replica. Unknown keys are a no-op.
	Delete(key string) error
	// Keys returns the sorted replica keys matching prefix.
	Keys(prefix string) []string
	// Has reports whether a replica exists under key (no verification).
	Has(key string) bool
	// Corrupt is the seeded fault-injection hook: damage the replica so
	// the next Get fails verification (torn truncates, otherwise one bit
	// flips). Returns false if there is nothing to damage.
	Corrupt(key string, torn bool) bool
}

// FSTier is the local-filesystem Tier: replicas are CRC32C-framed block
// files (the same "DPB1" frame as the local disk tier) under one shared
// directory. Like Store, it only reads keys written in this process —
// a restarted driver re-replicates, overwriting any stale files.
type FSTier struct {
	dir  string
	mu   sync.Mutex
	keys map[string]struct{}
}

// NewFSTier creates (if needed) dir and returns an FSTier over it.
func NewFSTier(dir string) (*FSTier, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty remote tier directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create remote tier %s: %w", dir, err)
	}
	return &FSTier{dir: dir, keys: make(map[string]struct{})}, nil
}

// Dir returns the shared directory the tier writes replicas into.
func (t *FSTier) Dir() string { return t.dir }

func (t *FSTier) fileFor(key string) string {
	return filepath.Join(t.dir, sanitizeKey(key)+".rep")
}

// Put implements Tier.
func (t *FSTier) Put(key string, data []byte) error {
	if err := writeBlockFile(t.fileFor(key), data); err != nil {
		return fmt.Errorf("store: replicate %q: %w", key, err)
	}
	t.mu.Lock()
	t.keys[key] = struct{}{}
	t.mu.Unlock()
	return nil
}

// Get implements Tier.
func (t *FSTier) Get(key string) ([]byte, error) {
	t.mu.Lock()
	_, ok := t.keys[key]
	t.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("store: no remote replica %q", key)
	}
	return readBlockFile(t.fileFor(key), key)
}

// Delete implements Tier.
func (t *FSTier) Delete(key string) error {
	t.mu.Lock()
	_, ok := t.keys[key]
	delete(t.keys, key)
	t.mu.Unlock()
	if !ok {
		return nil
	}
	return os.Remove(t.fileFor(key))
}

// Keys implements Tier.
func (t *FSTier) Keys(prefix string) []string {
	t.mu.Lock()
	var out []string
	for k := range t.keys {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	t.mu.Unlock()
	sort.Strings(out)
	return out
}

// Has implements Tier.
func (t *FSTier) Has(key string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	_, ok := t.keys[key]
	return ok
}

// Corrupt implements Tier.
func (t *FSTier) Corrupt(key string, torn bool) bool {
	t.mu.Lock()
	_, ok := t.keys[key]
	t.mu.Unlock()
	if !ok {
		return false
	}
	return damageBlockFile(t.fileFor(key), torn)
}

// AttachRemote wires a remote tier behind the store: blocks whose key
// the replication policy accepts are queued for asynchronous
// replication on every Put. A nil policy replicates everything. The
// tier starts available; SetRemoteAvailable simulates outages.
func (s *Store) AttachRemote(t Tier, policy func(key string) bool) {
	if policy == nil {
		policy = func(string) bool { return true }
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.remote = t
	s.repPolicy = policy
	s.remoteUp = true
	if s.repPending == nil {
		s.repPending = make(map[string]struct{})
	}
	if s.reg != nil && s.replicated == nil {
		s.replicated = s.reg.Counter("dpspark_remote_replicated_blocks_total", nil)
		s.restored = s.reg.Counter("dpspark_remote_restored_blocks_total", nil)
		s.remoteBad = s.reg.Counter("dpspark_remote_corrupt_replicas_detected_total", nil)
	}
}

// SetReplicaDomains turns on fault-domain-aware replica placement:
// originOf maps a block key to the rack (fault domain) of the node that
// produced it, and each replica is recorded as living in the *next*
// rack — never co-located with its origin's domain, so a single rack
// failure cannot take both copies. The placement is bookkeeping over
// the shared tier (the FSTier directory stands in for all racks); what
// it buys is that DropRemoteDomain can invalidate exactly the replicas
// a correlated rack failure would physically destroy. No-op with fewer
// than two racks or a nil mapper.
func (s *Store) SetReplicaDomains(racks int, originOf func(key string) int) {
	if racks < 2 || originOf == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.domains = racks
	s.originOf = originOf
	if s.replicaDomain == nil {
		s.replicaDomain = make(map[string]int)
	}
}

// DropRemoteDomain deletes every remote replica recorded as living in
// fault domain d and returns how many were dropped. Called when a rack
// failure takes out domain d: restores of those keys must fail over to
// recompute, exactly as if the rack's disks burned with its executors.
// No-op without an attached tier or domain tracking.
func (s *Store) DropRemoteDomain(d int) int {
	s.mu.Lock()
	remote := s.remote
	var victims []string
	for k, dom := range s.replicaDomain {
		if dom == d {
			victims = append(victims, k)
			delete(s.replicaDomain, k)
		}
	}
	s.mu.Unlock()
	if remote == nil {
		return 0
	}
	sort.Strings(victims)
	for _, k := range victims {
		// Physical destruction, not simulated traffic: proceeds
		// regardless of the availability gate, like Delete.
		remote.Delete(k)
	}
	return len(victims)
}

// RemoteAttached reports whether a remote tier is wired behind the store.
func (s *Store) RemoteAttached() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.remote != nil
}

// RemoteAvailable reports whether the remote tier is attached and not
// currently gated by a simulated outage.
func (s *Store) RemoteAvailable() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.remote != nil && s.remoteUp
}

// SetRemoteAvailable gates the remote tier for outage simulation: while
// down the replication queue parks (enqueues still accepted) and
// restores are refused; coming back up restarts the drain worker. No-op
// without an attached tier.
func (s *Store) SetRemoteAvailable(up bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.remote == nil {
		return
	}
	s.remoteUp = up
	if up && len(s.repQ) > 0 && !s.repWorker {
		s.repWorker = true
		go s.repWorkerLoop()
	}
}

// FlushReplication blocks until the replication queue has drained and no
// replica write is in flight — or until the remote tier goes (or is)
// unavailable, in which case the remaining backlog stays parked. No-op
// without an attached tier.
func (s *Store) FlushReplication() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.remote == nil {
		return
	}
	if s.remoteUp && len(s.repQ) > 0 && !s.repWorker {
		s.repWorker = true
		go s.repWorkerLoop()
	}
	for s.repWorker {
		s.cond.Wait()
	}
}

// RestoreFromRemote fetches an intact replica of key and re-installs it
// as the local block (replacing whatever local state the key had —
// including a damaged disk file), without re-queuing replication.
// Returns the payload size on success; *CorruptError when the replica
// fails verification, an error when it is missing or the tier is
// unavailable.
func (s *Store) RestoreFromRemote(key string) (int64, error) {
	s.mu.Lock()
	remote, up := s.remote, s.remoteUp
	s.mu.Unlock()
	if remote == nil {
		return 0, fmt.Errorf("store: no remote tier attached")
	}
	if !up {
		return 0, fmt.Errorf("store: remote tier unavailable")
	}
	data, err := remote.Get(key)
	if err != nil {
		if isCorrupt(err) {
			s.mu.Lock()
			s.stats.RemoteCorruptDetected++
			if s.remoteBad != nil {
				s.remoteBad.Inc()
			}
			s.mu.Unlock()
			s.recordFlight(obs.EvCorrupt, "remote:"+key)
		}
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		old, ok := s.blocks[key]
		if !ok {
			break
		}
		s.dropLocked(old)
	}
	e := &entry{key: key, size: int64(len(data)), data: data}
	e.elem = s.lru.PushFront(e)
	s.blocks[key] = e
	s.memUsed += e.size
	s.stats.RemoteRestored++
	if s.restored != nil {
		s.restored.Inc()
	}
	return e.size, s.evictLocked()
}

// RemoteHas reports whether a replica exists under key (no
// verification, no availability gate — existence checks are metadata).
func (s *Store) RemoteHas(key string) bool {
	s.mu.Lock()
	remote := s.remote
	s.mu.Unlock()
	return remote != nil && remote.Has(key)
}

// RemoteKeys returns the sorted replica keys matching prefix, or nil
// without an attached tier.
func (s *Store) RemoteKeys(prefix string) []string {
	s.mu.Lock()
	remote := s.remote
	s.mu.Unlock()
	if remote == nil {
		return nil
	}
	return remote.Keys(prefix)
}

// CorruptRemote is the seeded fault-injection hook for the remote tier:
// damage the replica under key so the next restore fails verification.
func (s *Store) CorruptRemote(key string, torn bool) bool {
	s.mu.Lock()
	remote := s.remote
	s.mu.Unlock()
	if remote == nil {
		return false
	}
	return remote.Corrupt(key, torn)
}

// enqueueReplicationLocked queues key for asynchronous replication
// (deduplicated), starting the lazy drain worker when the tier is up.
// Called with s.mu held.
func (s *Store) enqueueReplicationLocked(key string) {
	if _, queued := s.repPending[key]; queued {
		return
	}
	s.repPending[key] = struct{}{}
	s.repQ = append(s.repQ, key)
	if s.remoteUp && !s.repWorker {
		s.repWorker = true
		go s.repWorkerLoop()
	}
}

// repWorkerLoop is the single background replication writer: it drains
// the queue while the tier is up, reading each key's current bytes
// (memory, pinned, or verified disk) and writing the replica outside
// the lock. It parks (exits) the moment the tier goes down — the queue
// keeps the backlog — and is restarted by SetRemoteAvailable(true).
func (s *Store) repWorkerLoop() {
	s.mu.Lock()
	for s.remoteUp && len(s.repQ) > 0 {
		key := s.repQ[0]
		s.repQ = s.repQ[1:]
		delete(s.repPending, key)
		e, ok := s.blocks[key]
		if !ok {
			continue // deleted while queued
		}
		var data []byte
		if e.data != nil {
			data = e.data
		} else {
			d, err := readBlockFile(s.fileFor(key), key)
			if err != nil || s.blocks[key] != e {
				continue // unreadable (damaged) or replaced: skip
			}
			data = d
		}
		remote := s.remote
		s.mu.Unlock()
		err := remote.Put(key, data)
		s.mu.Lock()
		if err == nil {
			s.stats.ReplicatedBlocks++
			if s.replicated != nil {
				s.replicated.Inc()
			}
			if s.domains > 1 {
				// Place the replica in the rack after its origin's so no
				// single fault domain holds both copies of a block.
				s.replicaDomain[key] = (s.originOf(key) + 1) % s.domains
			}
			s.recordFlight(obs.EvReplication, key)
		}
		s.cond.Broadcast()
	}
	s.repWorker = false
	s.cond.Broadcast()
	s.mu.Unlock()
}
