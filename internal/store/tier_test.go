package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"dpspark/internal/obs"
)

func openWithRemote(t *testing.T, budget int64, reg *obs.Registry, policy func(string) bool) (*Store, *FSTier) {
	t.Helper()
	s := open(t, budget, reg)
	tier, err := NewFSTier(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.AttachRemote(tier, policy)
	return s, tier
}

func TestFSTierRoundTrip(t *testing.T) {
	tier, err := NewFSTier(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xC3}, 500)
	if err := tier.Put("shuffle/1/m0/r1", payload); err != nil {
		t.Fatal(err)
	}
	got, err := tier.Get("shuffle/1/m0/r1")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %x, %v", got, err)
	}
	if !tier.Has("shuffle/1/m0/r1") || tier.Has("nope") {
		t.Fatal("Has mismatch")
	}
	if _, err := tier.Get("nope"); err == nil {
		t.Fatal("Get of unknown replica must error")
	}
	if keys := tier.Keys("shuffle/"); len(keys) != 1 || keys[0] != "shuffle/1/m0/r1" {
		t.Fatalf("Keys = %v", keys)
	}
	if err := tier.Delete("shuffle/1/m0/r1"); err != nil {
		t.Fatal(err)
	}
	if tier.Has("shuffle/1/m0/r1") {
		t.Fatal("deleted replica still present")
	}
	if err := tier.Delete("nope"); err != nil {
		t.Fatalf("Delete of unknown key must be a no-op, got %v", err)
	}
}

func TestFSTierCorruptReplica(t *testing.T) {
	for _, torn := range []bool{false, true} {
		t.Run(fmt.Sprintf("torn=%v", torn), func(t *testing.T) {
			tier, err := NewFSTier(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			if err := tier.Put("x", []byte("replica payload bytes")); err != nil {
				t.Fatal(err)
			}
			if !tier.Corrupt("x", torn) {
				t.Fatal("Corrupt returned false")
			}
			_, err = tier.Get("x")
			ce, ok := err.(*CorruptError)
			if !ok {
				t.Fatalf("Get after Corrupt: err = %v, want *CorruptError", err)
			}
			if ce.Torn != torn {
				t.Fatalf("Torn = %v, want %v", ce.Torn, torn)
			}
			if tier.Corrupt("nope", torn) {
				t.Fatal("Corrupt of unknown replica returned true")
			}
		})
	}
}

func TestReplicationPolicyAndFlush(t *testing.T) {
	reg := obs.NewRegistry()
	s, tier := openWithRemote(t, 0, reg, func(key string) bool {
		return key[0] == 's'
	})
	if err := s.Put("s/1", []byte("replicated")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("bc/1", []byte("not replicated")); err != nil {
		t.Fatal(err)
	}
	s.FlushReplication()
	if !tier.Has("s/1") {
		t.Fatal("policy-accepted block not replicated")
	}
	if tier.Has("bc/1") {
		t.Fatal("policy-rejected block replicated")
	}
	st := s.Stats()
	if st.ReplicatedBlocks != 1 || st.RemoteQueue != 0 {
		t.Fatalf("stats after flush: %+v", st)
	}
	if got := reg.CounterTotal("dpspark_remote_replicated_blocks_total"); got != 1 {
		t.Fatalf("replicated counter = %d, want 1", got)
	}
	// Replicas survive local deletion of everything else only via Delete's
	// housekeeping: deleting the local block removes the replica too.
	s.Delete("s/1")
	if tier.Has("s/1") {
		t.Fatal("Delete left the remote replica behind")
	}
}

func TestReplicationParksDuringOutageAndDrains(t *testing.T) {
	s, tier := openWithRemote(t, 0, nil, nil)
	s.SetRemoteAvailable(false)
	for i := 0; i < 3; i++ {
		if err := s.Put(fmt.Sprintf("k/%d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// FlushReplication must return immediately (queue parked), not wedge.
	s.FlushReplication()
	if st := s.Stats(); st.RemoteQueue != 3 || st.ReplicatedBlocks != 0 {
		t.Fatalf("parked queue stats: %+v", st)
	}
	if tier.Has("k/0") {
		t.Fatal("replica written while tier down")
	}
	s.SetRemoteAvailable(true)
	s.FlushReplication()
	for i := 0; i < 3; i++ {
		if !tier.Has(fmt.Sprintf("k/%d", i)) {
			t.Fatalf("backlog key k/%d not drained after recovery", i)
		}
	}
	if st := s.Stats(); st.RemoteQueue != 0 || st.ReplicatedBlocks != 3 {
		t.Fatalf("drained queue stats: %+v", st)
	}
}

func TestRestoreFromRemoteRepairsDamagedBlock(t *testing.T) {
	reg := obs.NewRegistry()
	s, _ := openWithRemote(t, 0, reg, nil)
	payload := bytes.Repeat([]byte{0x77}, 300)
	if err := s.Put("blk", payload); err != nil {
		t.Fatal(err)
	}
	s.FlushReplication()
	// Damage the local copy; the store now reports it lost.
	if !s.Corrupt("blk", false) {
		t.Fatal("Corrupt returned false")
	}
	if _, err := s.Get("blk"); err == nil {
		t.Fatal("damaged local block must fail verification")
	}
	n, err := s.RestoreFromRemote("blk")
	if err != nil || n != int64(len(payload)) {
		t.Fatalf("RestoreFromRemote = %d, %v", n, err)
	}
	mustGet(t, s, "blk", payload)
	if !s.InMemory("blk") {
		t.Fatal("restored block not re-installed in the memory tier")
	}
	if st := s.Stats(); st.RemoteRestored != 1 {
		t.Fatalf("RemoteRestored = %d, want 1", st.RemoteRestored)
	}
	if got := reg.CounterTotal("dpspark_remote_restored_blocks_total"); got != 1 {
		t.Fatalf("restored counter = %d, want 1", got)
	}
}

func TestRestoreFromRemoteFailures(t *testing.T) {
	reg := obs.NewRegistry()
	s, tier := openWithRemote(t, 0, reg, nil)
	// Missing replica.
	if _, err := s.RestoreFromRemote("ghost"); err == nil {
		t.Fatal("restore of a never-replicated key must error")
	}
	// Corrupt replica: counted and surfaced as *CorruptError.
	if err := s.Put("bad", []byte("payload that will rot")); err != nil {
		t.Fatal(err)
	}
	s.FlushReplication()
	if !tier.Corrupt("bad", false) {
		t.Fatal("tier.Corrupt returned false")
	}
	if _, err := s.RestoreFromRemote("bad"); err == nil {
		t.Fatal("restore of a corrupt replica must error")
	} else if _, ok := err.(*CorruptError); !ok {
		t.Fatalf("err = %v, want *CorruptError", err)
	}
	if st := s.Stats(); st.RemoteCorruptDetected != 1 {
		t.Fatalf("RemoteCorruptDetected = %d, want 1", st.RemoteCorruptDetected)
	}
	if got := reg.CounterTotal("dpspark_remote_corrupt_replicas_detected_total"); got != 1 {
		t.Fatalf("corrupt-replica counter = %d, want 1", got)
	}
	// Unavailable tier.
	s.SetRemoteAvailable(false)
	if _, err := s.RestoreFromRemote("bad"); err == nil {
		t.Fatal("restore while the tier is down must error")
	}
	// No tier at all.
	bare := open(t, 0, nil)
	if bare.RemoteAttached() || bare.RemoteAvailable() {
		t.Fatal("fresh store claims a remote tier")
	}
	if _, err := bare.RestoreFromRemote("x"); err == nil {
		t.Fatal("restore without a tier must error")
	}
	bare.FlushReplication() // must be a no-op, not a hang
}

func TestAsyncSpillBitIdentityAndDirtyReads(t *testing.T) {
	// Two stores with the same budget and write sequence: the eviction
	// *choices* (Spilled/Evicted counts, which blocks leave memory) are
	// decided synchronously under the lock, so they must match exactly no
	// matter how the background writer's timing floats; and every read —
	// dirty (pinned, awaiting its write), in-flight or on disk — returns
	// the exact bytes that were put.
	blk := func(i int) []byte { return bytes.Repeat([]byte{byte(i)}, 64+i) }
	run := func() (Stats, *Store) {
		s := open(t, 256, nil)
		for i := 0; i < 16; i++ {
			if err := s.Put(fmt.Sprintf("b/%d", i), blk(i)); err != nil {
				t.Fatal(err)
			}
			// Interleave reads while spills are potentially still queued.
			mustGet(t, s, fmt.Sprintf("b/%d", i/2), blk(i/2))
		}
		s.Flush()
		return s.Stats(), s
	}
	a, _ := run()
	b, s := run()
	if a.Spilled != b.Spilled || a.Evicted != b.Evicted ||
		a.MemBlocks != b.MemBlocks || a.DiskBlocks != b.DiskBlocks {
		t.Fatalf("eviction choice diverged across runs:\n%+v\n%+v", a, b)
	}
	for i := 0; i < 16; i++ {
		mustGet(t, s, fmt.Sprintf("b/%d", i), blk(i))
	}
}

func TestAsyncSpillFlushSettlesQueue(t *testing.T) {
	s := open(t, 128, nil)
	for i := 0; i < 32; i++ {
		if err := s.Put(fmt.Sprintf("q/%d", i), bytes.Repeat([]byte{byte(i)}, 100)); err != nil {
			t.Fatal(err)
		}
	}
	s.Flush()
	st := s.Stats()
	if st.SpillWall <= 0 {
		t.Fatalf("flushed store recorded no spill wall time: %+v", st)
	}
	if st.MemBytes > 128 {
		t.Fatalf("memory tier over budget after flush: %+v", st)
	}
	// After Flush no block may still be dirty: disk-resident blocks must
	// really be on disk (delete one's file out from under it to prove the
	// read goes to disk, then restore it).
	files, _ := filepath.Glob(filepath.Join(s.Dir(), "*.blk"))
	if int64(len(files)) != st.DiskBlocks {
		t.Fatalf("%d spill files for %d disk blocks", len(files), st.DiskBlocks)
	}
}

func TestGCCheckpointsRetention(t *testing.T) {
	dir := t.TempDir()
	for id := 1; id <= 5; id++ {
		if err := WriteCheckpoint(dir, id, []byte(fmt.Sprintf(`{"iter":%d}`, id)), []byte("blocks")); err != nil {
			t.Fatal(err)
		}
	}
	deleted := GCCheckpoints(dir, 2)
	if len(deleted) != 3 || deleted[0] != 1 || deleted[2] != 3 {
		t.Fatalf("deleted = %v, want [1 2 3]", deleted)
	}
	if ids := ListCheckpoints(dir); len(ids) != 2 || ids[0] != 4 || ids[1] != 5 {
		t.Fatalf("remaining = %v, want [4 5]", ids)
	}
	// keep <= 0 keeps everything; keep larger than what exists deletes
	// nothing.
	if del := GCCheckpoints(dir, 0); del != nil {
		t.Fatalf("keep=0 deleted %v", del)
	}
	if del := GCCheckpoints(dir, 10); del != nil {
		t.Fatalf("keep=10 deleted %v", del)
	}
}

func TestGCCheckpointsNeverDeletesBeforeNewerVerifies(t *testing.T) {
	dir := t.TempDir()
	for id := 1; id <= 4; id++ {
		if err := WriteCheckpoint(dir, id, []byte(fmt.Sprintf(`{"iter":%d}`, id)), []byte("blocks")); err != nil {
			t.Fatal(err)
		}
	}
	// Damage the two newest: retention keep=2 must fall back to the older
	// intact pair and delete nothing (fewer intact than asked keeps all),
	// then with keep=1 it must retain id 2 (the newest intact) and the
	// damaged-but-newer files for post-mortem.
	for _, id := range []int{3, 4} {
		raw, err := os.ReadFile(ckptFile(dir, id))
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)-6] ^= 0xFF
		if err := os.WriteFile(ckptFile(dir, id), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if del := GCCheckpoints(dir, 3); del != nil {
		t.Fatalf("keep=3 with only 2 intact deleted %v", del)
	}
	deleted := GCCheckpoints(dir, 1)
	if len(deleted) != 1 || deleted[0] != 1 {
		t.Fatalf("deleted = %v, want [1]", deleted)
	}
	ids := ListCheckpoints(dir)
	if len(ids) != 3 || ids[0] != 2 {
		t.Fatalf("remaining = %v, want [2 3 4]", ids)
	}
	if id, _, _, ok := LatestCheckpoint(dir); !ok || id != 2 {
		t.Fatalf("LatestCheckpoint = %d ok=%v, want 2 true", id, ok)
	}
}
