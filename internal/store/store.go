// Package store is the engine's BlockManager: a budgeted in-memory block
// tier that evicts least-recently-used blocks to a checksummed on-disk
// tier, an optional third *remote* tier (tier.go) holding replicas on
// shared storage, plus atomic driver checkpoint files (checkpoint.go).
//
// Blocks are opaque byte slices keyed by string; the rdd layer encodes
// shuffle buckets and broadcast payloads through a Codec (tiles ride
// matrix.AppendTile). A block lives in exactly one local tier at a time:
// inserts land in memory, eviction under MemoryBudget pressure spills to
// disk, and disk reads verify a CRC32C before returning bytes — a
// mismatch or torn write surfaces as *CorruptError so the caller can
// route it into the FetchFailed → partial-recompute path instead of
// consuming silent garbage. Remote replicas carry the same frame and the
// same checksum-on-read = lost-block contract.
//
// Spills are asynchronous: eviction *chooses* its victims
// deterministically under the lock (LRU order, counted immediately) but
// only enqueues the disk write to a background writer, keeping the bytes
// pinned on the entry (dirty) until they hit disk. Only the wall-clock
// moment the file appears floats; every observable byte is identical to
// the synchronous path, and the synchronous path remains as the
// fallback when the queue is full.
//
// The store never decides *when* corruption happens: Corrupt is the
// deliberate, seeded injection hook used by the fault plan, mirroring how
// PR 3 injects crashes. Everything else is defensive only.
package store

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"dpspark/internal/obs"
)

// blockMagic marks a spilled block file ("DPB1").
const blockMagic = 0x44504231

// blockHeaderLen is magic + crc + payload length.
const blockHeaderLen = 4 + 4 + 8

// asyncSpillCap bounds the dirty blocks awaiting the background writer;
// eviction beyond it falls back to the synchronous write path so memory
// pressure can never build an unbounded pinned backlog.
const asyncSpillCap = 256

// crcTable is the Castagnoli polynomial used for all on-disk checksums
// (same polynomial as Spark's shuffle checksum and most storage systems).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// CorruptError reports a disk block whose bytes failed verification.
// Torn distinguishes a short/truncated file (interrupted write) from a
// full-length file whose checksum does not match (bit rot / injected
// flip).
type CorruptError struct {
	Key  string
	Torn bool
}

func (e *CorruptError) Error() string {
	if e.Torn {
		return fmt.Sprintf("store: block %q torn (truncated write)", e.Key)
	}
	return fmt.Sprintf("store: block %q checksum mismatch", e.Key)
}

// Options configure Open.
type Options struct {
	// MemoryBudget caps the bytes held in the memory tier; blocks beyond
	// it are evicted LRU-first to disk. <= 0 means unbounded (blocks only
	// reach disk via Corrupt or explicit spill).
	MemoryBudget int64
	// Registry receives the spill/eviction/corruption counters
	// (dpspark_{spilled_blocks,evicted_blocks,corrupt_blocks_detected}_total)
	// and, once a remote tier is attached, the dpspark_remote_* families.
	// Nil is fine; the store keeps its own Stats either way.
	Registry *obs.Registry
	// Flight, when non-nil, receives structured eviction / replication /
	// corruption-detection events for the engine's flight recorder.
	Flight *obs.FlightRecorder
}

// Stats is a point-in-time snapshot of the store.
type Stats struct {
	MemBlocks  int64
	MemBytes   int64
	DiskBlocks int64
	DiskBytes  int64
	// Spilled counts blocks written to the disk tier (eviction or forced).
	// Counted when the spill is *chosen*, so the count is deterministic
	// even though the write itself is asynchronous.
	Spilled int64
	// Evicted counts blocks pushed out of memory by budget pressure.
	Evicted int64
	// CorruptDetected counts disk reads that failed verification.
	CorruptDetected int64
	// SpillWall is real wall-clock time spent writing spill files — the
	// one store cost that is genuinely host time, not simulated time.
	// With async spill it accrues when the background writer finishes;
	// call Flush before reading it if every pending write must be in.
	SpillWall time.Duration
	// ReplicatedBlocks counts blocks durably copied to the remote tier.
	ReplicatedBlocks int64
	// RemoteRestored counts blocks re-installed locally from an intact
	// remote replica (RestoreFromRemote).
	RemoteRestored int64
	// RemoteCorruptDetected counts remote replica reads that failed
	// verification.
	RemoteCorruptDetected int64
	// RemoteQueue is the current replication backlog (parked entries
	// included while the remote tier is unavailable).
	RemoteQueue int64
}

// entry is one block. data != nil && !dirty means memory (elem is its LRU
// slot); data != nil && dirty means the block was evicted but its bytes
// are pinned awaiting the background spill writer (accounted to the disk
// tier already); data == nil means its bytes live in the disk file named
// by fileFor(key).
type entry struct {
	key  string
	size int64
	data []byte
	elem *list.Element
	// dirty pins an async-evicted block's bytes until the writer lands
	// them; writing marks the write currently in flight.
	dirty   bool
	writing bool
}

// Store is a concurrency-safe tiered block store rooted at one
// directory. The zero value is not usable; call Open.
type Store struct {
	dir    string
	budget int64

	mu      sync.Mutex
	cond    *sync.Cond // signals background-writer progress (spill + replication)
	blocks  map[string]*entry
	lru     *list.List // front = most recent; values are *entry
	memUsed int64
	disk    int64 // bytes on disk (dirty blocks counted here already)
	diskN   int64 // blocks on disk
	stats   Stats

	// Async spill: FIFO of dirty entries awaiting the single background
	// writer (lazily started, exits when drained).
	spillQ      []*entry
	spillWorker bool

	// Remote tier (tier.go): replication queue of keys, single lazy
	// worker, availability gate for outage simulation.
	remote     Tier
	repPolicy  func(key string) bool
	remoteUp   bool
	repQ       []string
	repPending map[string]struct{}
	repWorker  bool

	// Fault-domain-aware replica placement (tier.go): when configured
	// via SetReplicaDomains, each landed replica is recorded as living
	// in the rack after its origin's, so a correlated rack failure can
	// invalidate exactly the replicas it would physically take out.
	domains       int
	originOf      func(key string) int
	replicaDomain map[string]int

	reg        *obs.Registry
	flight     *obs.FlightRecorder
	spilled    *obs.Counter
	evicted    *obs.Counter
	corrupted  *obs.Counter
	replicated *obs.Counter
	restored   *obs.Counter
	remoteBad  *obs.Counter
}

// Open creates (if needed) dir and returns a Store over it. Stale block
// files from a previous process in the same dir are ignored: the store
// only reads keys it wrote in this process, so a crashed run's spill
// files are simply overwritten or left behind.
func Open(dir string, opts Options) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create %s: %w", dir, err)
	}
	s := &Store{
		dir:    dir,
		budget: opts.MemoryBudget,
		blocks: make(map[string]*entry),
		lru:    list.New(),
		reg:    opts.Registry,
		flight: opts.Flight,
	}
	s.cond = sync.NewCond(&s.mu)
	if opts.Registry != nil {
		s.spilled = opts.Registry.Counter("dpspark_spilled_blocks_total", nil)
		s.evicted = opts.Registry.Counter("dpspark_evicted_blocks_total", nil)
		s.corrupted = opts.Registry.Counter("dpspark_corrupt_blocks_detected_total", nil)
	}
	return s, nil
}

// Dir returns the directory the store spills into.
func (s *Store) Dir() string { return s.dir }

// recordFlight emits one flight-recorder event for a block, stamping
// the engine's virtual clock via the recorder's clock source. Safe to
// call with s.mu held: the recorder's clock source reads the simulator
// clock, and the simulator never calls back into the store.
func (s *Store) recordFlight(typ, key string) {
	if s.flight == nil {
		return
	}
	s.flight.Record(obs.Event{
		Clock: -1, Type: typ,
		Stage: -1, Attempt: -1, Part: -1, Node: -1, Shuffle: -1,
		Detail: key,
	})
}

// Put stores data under key, replacing any previous block. The slice is
// retained; callers must not mutate it afterwards. The insert lands in
// the memory tier and then evicts LRU blocks while over budget (possibly
// spilling the new block itself if it alone exceeds the budget). When a
// remote tier is attached and its policy covers the key, the block is
// also queued for asynchronous replication.
func (s *Store) Put(key string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		old, ok := s.blocks[key]
		if !ok {
			break
		}
		// dropLocked may wait for an in-flight background write (releasing
		// the lock); re-check until the key is really free.
		s.dropLocked(old)
	}
	e := &entry{key: key, size: int64(len(data)), data: data}
	e.elem = s.lru.PushFront(e)
	s.blocks[key] = e
	s.memUsed += e.size
	if s.remote != nil && s.repPolicy(key) {
		s.enqueueReplicationLocked(key)
	}
	return s.evictLocked()
}

// Get returns the block's bytes. Memory hits refresh the block's LRU
// position; dirty (spill-pending) blocks are served from their pinned
// bytes; disk hits verify the checksum and return *CorruptError on
// mismatch or torn write (the bad file is left in place for post-mortem —
// callers recover by recompute + Put, which overwrites it). The returned
// slice must be treated as read-only.
func (s *Store) Get(key string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.blocks[key]
	if !ok {
		return nil, fmt.Errorf("store: no block %q", key)
	}
	if e.data != nil {
		if e.elem != nil {
			s.lru.MoveToFront(e.elem)
		}
		return e.data, nil
	}
	data, err := readBlockFile(s.fileFor(key), key)
	if err != nil {
		if isCorrupt(err) {
			s.stats.CorruptDetected++
			if s.corrupted != nil {
				s.corrupted.Inc()
			}
			s.recordFlight(obs.EvCorrupt, key)
		}
		return nil, err
	}
	return data, nil
}

// Has reports whether key is stored (any local tier).
func (s *Store) Has(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.blocks[key]
	return ok
}

// InMemory reports whether key currently lives in the memory tier (a
// dirty block awaiting its spill write already counts as disk).
func (s *Store) InMemory(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.blocks[key]
	return ok && e.data != nil && !e.dirty
}

// Delete removes the block from the local tiers and, when a remote tier
// is attached, its replica. Unknown keys are a no-op.
func (s *Store) Delete(key string) {
	s.mu.Lock()
	if e, ok := s.blocks[key]; ok {
		s.dropLocked(e)
	}
	delete(s.replicaDomain, key)
	remote := s.remote
	s.mu.Unlock()
	if remote != nil {
		// Replica cleanup is physical housekeeping, not simulated data-path
		// traffic, so it proceeds regardless of the availability gate.
		remote.Delete(key)
	}
}

// DeletePrefix removes every local block whose key starts with prefix
// (and their remote replicas) and returns how many local blocks were
// dropped. Used to retire a whole shuffle's buckets in one call.
func (s *Store) DeletePrefix(prefix string) int {
	s.mu.Lock()
	var victims []*entry
	for k, e := range s.blocks {
		if strings.HasPrefix(k, prefix) {
			victims = append(victims, e)
		}
	}
	for _, e := range victims {
		s.dropLocked(e)
	}
	for k := range s.replicaDomain {
		if strings.HasPrefix(k, prefix) {
			delete(s.replicaDomain, k)
		}
	}
	remote := s.remote
	s.mu.Unlock()
	if remote != nil {
		for _, k := range remote.Keys(prefix) {
			remote.Delete(k)
		}
	}
	return len(victims)
}

// Keys returns the sorted keys matching prefix, across the local tiers.
func (s *Store) Keys(prefix string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for k := range s.blocks {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Corrupt is the seeded fault-injection hook: it forces the block to the
// disk tier (spilling it if memory-resident, settling a pending async
// write first), then damages the file — truncating it mid-payload when
// torn, flipping one payload byte otherwise — so the next Get fails
// verification. Returns false if the key is unknown or the file cannot
// be damaged (e.g. empty payload with torn=false). The memory copy is
// dropped so the damage is observable.
func (s *Store) Corrupt(key string, torn bool) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.blocks[key]
	if !ok {
		return false
	}
	if e.dirty {
		if s.settleLocked(e) != nil {
			return false
		}
	} else if e.data != nil {
		if err := s.spillLocked(e); err != nil {
			return false
		}
	}
	if s.blocks[key] != e {
		return false // replaced while settling the pending write
	}
	return damageBlockFile(s.fileFor(key), torn)
}

// Spill forces a block's bytes onto disk: a memory-resident block is
// spilled synchronously (counted as a spill, not an eviction) and a
// dirty block's pending async write is settled now. Disk-resident or
// unknown keys are a no-op.
func (s *Store) Spill(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.blocks[key]
	if !ok || e.data == nil {
		return nil
	}
	if e.dirty {
		return s.settleLocked(e)
	}
	return s.spillLocked(e)
}

// Flush blocks until every queued async spill has landed on disk and no
// background spill write is in flight. Replication is not waited on —
// see FlushReplication.
func (s *Store) Flush() {
	s.mu.Lock()
	for len(s.spillQ) > 0 || s.spillWorker {
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// Stats returns a snapshot of the store's tier sizes and counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.MemBlocks = int64(s.lru.Len())
	st.MemBytes = s.memUsed
	st.DiskBlocks = s.diskN
	st.DiskBytes = s.disk
	st.RemoteQueue = int64(len(s.repQ))
	return st
}

// evictLocked pushes LRU blocks out of memory until the memory tier fits
// the budget. The victim *choice* and the eviction/spill counts are
// deterministic (this lock, LRU order); the disk write itself is handed
// to the background writer unless the queue is full, in which case the
// synchronous path runs inline. Called with s.mu held.
func (s *Store) evictLocked() error {
	if s.budget <= 0 {
		return nil
	}
	for s.memUsed > s.budget && s.lru.Len() > 0 {
		e := s.lru.Back().Value.(*entry)
		s.stats.Evicted++
		if s.evicted != nil {
			s.evicted.Inc()
		}
		s.recordFlight(obs.EvEviction, e.key)
		if len(s.spillQ) < asyncSpillCap {
			s.enqueueSpillLocked(e)
		} else if err := s.spillLocked(e); err != nil {
			return err
		}
	}
	return nil
}

// enqueueSpillLocked moves e to the disk tier logically (accounting +
// spill count now, deterministically) and queues the write for the
// background writer, pinning the bytes via dirty. Called with s.mu held;
// e must be memory-resident.
func (s *Store) enqueueSpillLocked(e *entry) {
	s.stats.Spilled++
	if s.spilled != nil {
		s.spilled.Inc()
	}
	s.lru.Remove(e.elem)
	e.elem = nil
	e.dirty = true
	s.memUsed -= e.size
	s.disk += e.size
	s.diskN++
	s.spillQ = append(s.spillQ, e)
	if !s.spillWorker {
		s.spillWorker = true
		go s.spillWorkerLoop()
	}
}

// spillWorkerLoop is the single background spill writer: it drains the
// queue, writing each still-current dirty entry's bytes outside the lock
// and unpinning them on success. It exits when the queue is empty
// (restarted lazily by the next enqueue).
func (s *Store) spillWorkerLoop() {
	s.mu.Lock()
	for len(s.spillQ) > 0 {
		e := s.spillQ[0]
		s.spillQ = s.spillQ[1:]
		if s.blocks[e.key] != e || !e.dirty {
			continue // dropped or settled synchronously while queued
		}
		e.writing = true
		data := e.data
		path := s.fileFor(e.key)
		s.mu.Unlock()
		start := time.Now()
		err := writeBlockFile(path, data)
		elapsed := time.Since(start)
		s.mu.Lock()
		e.writing = false
		if s.blocks[e.key] == e && e.dirty {
			if err == nil {
				s.stats.SpillWall += elapsed
				e.dirty = false
				e.data = nil
			} else {
				// The write failed: return the block to the memory tier so
				// its bytes stay reachable (it becomes the next eviction
				// candidate; a persistently failing disk then surfaces
				// through the synchronous fallback's error).
				e.dirty = false
				e.elem = s.lru.PushBack(e)
				s.memUsed += e.size
				s.disk -= e.size
				s.diskN--
			}
		}
		s.cond.Broadcast()
	}
	s.spillWorker = false
	s.cond.Broadcast()
	s.mu.Unlock()
}

// settleLocked forces a dirty entry's pending write to complete
// synchronously so the block's bytes are on disk now. Called with s.mu
// held; waits out an in-flight background write of the same entry first.
func (s *Store) settleLocked(e *entry) error {
	s.awaitWriteLocked(e)
	if !e.dirty {
		return nil // the writer (or another settler) got there first
	}
	start := time.Now()
	if err := writeBlockFile(s.fileFor(e.key), e.data); err != nil {
		return fmt.Errorf("store: spill %q: %w", e.key, err)
	}
	s.stats.SpillWall += time.Since(start)
	e.dirty = false
	e.data = nil
	return nil
}

// awaitWriteLocked blocks (releasing s.mu) until no background write is
// in flight for e. Called with s.mu held.
func (s *Store) awaitWriteLocked(e *entry) {
	for e.writing {
		s.cond.Wait()
	}
}

// spillLocked writes e's bytes to its block file synchronously and moves
// it to the disk tier. Called with s.mu held; e must be memory-resident.
func (s *Store) spillLocked(e *entry) error {
	start := time.Now()
	if err := writeBlockFile(s.fileFor(e.key), e.data); err != nil {
		return fmt.Errorf("store: spill %q: %w", e.key, err)
	}
	s.stats.SpillWall += time.Since(start)
	s.stats.Spilled++
	if s.spilled != nil {
		s.spilled.Inc()
	}
	s.lru.Remove(e.elem)
	s.memUsed -= e.size
	e.elem = nil
	e.data = nil
	s.disk += e.size
	s.diskN++
	return nil
}

// dropLocked removes e from whichever tier holds it, waiting out an
// in-flight background write first (may release s.mu; callers must
// re-check map state afterwards). Called with s.mu held.
func (s *Store) dropLocked(e *entry) {
	s.awaitWriteLocked(e)
	if s.blocks[e.key] != e {
		return // a racing caller dropped it while we waited
	}
	switch {
	case e.dirty:
		// Evicted but never written: it is accounted to the disk tier, and
		// the queued write will skip it (dirty cleared, map entry gone). A
		// file from an earlier block under the same key may still exist.
		e.dirty = false
		e.data = nil
		s.disk -= e.size
		s.diskN--
		os.Remove(s.fileFor(e.key))
	case e.data != nil:
		s.lru.Remove(e.elem)
		s.memUsed -= e.size
	default:
		s.disk -= e.size
		s.diskN--
		os.Remove(s.fileFor(e.key))
	}
	delete(s.blocks, e.key)
}

// fileFor maps a block key to its spill file path.
func (s *Store) fileFor(key string) string {
	return filepath.Join(s.dir, sanitizeKey(key)+".blk")
}

// sanitizeKey turns an arbitrary block key into a safe, collision-free
// file name: bytes outside [A-Za-z0-9._-] are %xx-escaped ('%' itself
// included, so the mapping is injective).
func sanitizeKey(key string) string {
	var b strings.Builder
	b.Grow(len(key))
	for i := 0; i < len(key); i++ {
		c := key[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
			b.WriteByte(c)
		default:
			fmt.Fprintf(&b, "%%%02x", c)
		}
	}
	return b.String()
}

// isCorrupt reports whether err is (or wraps) a *CorruptError.
func isCorrupt(err error) bool {
	_, ok := err.(*CorruptError)
	return ok
}

// damageBlockFile damages one block file in place — truncating it
// mid-payload when torn, flipping one payload bit otherwise — so the
// next verified read fails. Shared by the local and remote corruption
// injection hooks. Returns false if the file cannot be damaged.
func damageBlockFile(path string, torn bool) bool {
	info, err := os.Stat(path)
	if err != nil {
		return false
	}
	if torn {
		// Chop inside the payload so the header still parses but the
		// bytes run out: a classic interrupted write.
		cut := blockHeaderLen + (info.Size()-blockHeaderLen)/2
		if info.Size() <= blockHeaderLen {
			cut = info.Size() / 2
		}
		return os.Truncate(path, cut) == nil
	}
	if info.Size() <= blockHeaderLen {
		return false
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return false
	}
	defer f.Close()
	// Flip one bit in the middle of the payload.
	off := blockHeaderLen + (info.Size()-blockHeaderLen)/2
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		return false
	}
	b[0] ^= 0x01
	_, err = f.WriteAt(b[:], off)
	return err == nil
}

// writeBlockFile writes magic + CRC32C + length + payload. The write is
// not atomic on purpose: spill files model executor-local staging, and a
// torn spill is exactly the failure mode Corrupt(torn=true) injects and
// readBlockFile must detect.
func writeBlockFile(path string, payload []byte) error {
	hdr := make([]byte, blockHeaderLen)
	binary.LittleEndian.PutUint32(hdr[0:], blockMagic)
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, crcTable))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(payload)))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Write(payload); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// readBlockFile reads and verifies one spill file. Torn or mismatched
// content returns *CorruptError; foreign bytes (bad magic) too, since a
// spill file that isn't ours is as unusable as a damaged one.
func readBlockFile(path, key string) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: read block %q: %w", key, err)
	}
	if len(raw) < blockHeaderLen {
		return nil, &CorruptError{Key: key, Torn: true}
	}
	if binary.LittleEndian.Uint32(raw[0:]) != blockMagic {
		return nil, &CorruptError{Key: key}
	}
	want := binary.LittleEndian.Uint32(raw[4:])
	n := binary.LittleEndian.Uint64(raw[8:])
	payload := raw[blockHeaderLen:]
	if uint64(len(payload)) < n {
		return nil, &CorruptError{Key: key, Torn: true}
	}
	if uint64(len(payload)) > n {
		return nil, &CorruptError{Key: key}
	}
	if crc32.Checksum(payload, crcTable) != want {
		return nil, &CorruptError{Key: key}
	}
	return payload, nil
}
