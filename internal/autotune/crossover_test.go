package autotune

import (
	"strings"
	"testing"
	"time"

	"dpspark/internal/cluster"
	"dpspark/internal/semiring"
)

// The crossover tests are structural: they pin the shape and invariants
// of the measured profiles, never absolute timings or speedups — CI
// machines (and this container) may have a single core, where parallel
// can legitimately never win.

func TestMeasureKernelScaling(t *testing.T) {
	for _, rule := range []semiring.Rule{semiring.NewFloydWarshall(), semiring.NewGaussian()} {
		prof := MeasureKernelScaling(rule, 64, []int{1, 2}, 2)
		if prof.B != 64 || len(prof.Points) != 2 {
			t.Fatalf("%s: profile shape B=%d points=%d", rule.Name(), prof.B, len(prof.Points))
		}
		for _, pt := range prof.Points {
			if pt.Time <= 0 || pt.Throughput <= 0 {
				t.Fatalf("%s t%d: non-positive sample %v / %v", rule.Name(), pt.Threads, pt.Time, pt.Throughput)
			}
		}
		if bt := prof.BestThreads(); bt != 1 && bt != 2 {
			t.Fatalf("BestThreads = %d, not in measured set", bt)
		}
		if sp := prof.Speedup(2); sp <= 0 {
			t.Fatalf("Speedup(2) = %v", sp)
		}
		if sp := prof.Speedup(16); sp != 1 {
			t.Fatalf("Speedup of an unmeasured width = %v, want neutral 1", sp)
		}
		if s := prof.String(); !strings.HasPrefix(s, "b=64:") || !strings.Contains(s, "t1=") {
			t.Fatalf("String() = %q", s)
		}
	}
}

func TestKernelProfileEdgeCases(t *testing.T) {
	if bt := (KernelProfile{}).BestThreads(); bt != 1 {
		t.Fatalf("empty profile BestThreads = %d, want 1", bt)
	}
	if sp := (KernelProfile{}).Speedup(4); sp != 1 {
		t.Fatalf("empty profile Speedup = %v, want 1", sp)
	}
	// Ties prefer fewer threads.
	p := KernelProfile{B: 64, Points: []ScalingPoint{
		{Threads: 4, Time: time.Millisecond, Throughput: 100},
		{Threads: 2, Time: time.Millisecond, Throughput: 100},
		{Threads: 1, Time: time.Millisecond, Throughput: 100},
	}}
	if bt := p.BestThreads(); bt != 1 {
		t.Fatalf("tied profile BestThreads = %d, want narrowest", bt)
	}
}

func TestCrossover(t *testing.T) {
	// threads ≤ 1 never crosses over, without measuring anything.
	if c := Crossover(semiring.NewFloydWarshall(), 1, []int{64, 128}, 1); c != 0 {
		t.Fatalf("serial crossover = %d, want 0", c)
	}
	// A real measurement returns either a size from the list or 0.
	sizes := []int{64, 96}
	c := Crossover(semiring.NewFloydWarshall(), 2, sizes, 1)
	if c != 0 && c != 64 && c != 96 {
		t.Fatalf("crossover = %d, not in candidate sizes", c)
	}
}

func TestSplitCoresThreads(t *testing.T) {
	// A profile where 4 threads carry near-linear speedup: the split
	// should spend cores on kernel threads, and must always respect
	// slots × threads ≤ cores.
	scaling := KernelProfile{B: 512, Points: []ScalingPoint{
		{Threads: 1, Throughput: 100},
		{Threads: 2, Throughput: 195},
		{Threads: 4, Throughput: 380},
	}}
	for _, cores := range []int{1, 2, 4, 8, 16} {
		ec, kt := SplitCoresThreads(cores, scaling)
		if ec < 1 || kt < 1 || ec*kt > cores && cores >= 1 {
			t.Fatalf("cores=%d: split %d×%d out of bounds", cores, ec, kt)
		}
		if cores == 1 && kt != 1 {
			t.Fatalf("single core must stay serial, got threads=%d", kt)
		}
	}
	// Sub-linear scaling loses to task parallelism: 8 cores as 8 serial
	// slots (8×100) beat 2 slots × 4 threads (2×380/100 → 7.6 slots).
	weak := KernelProfile{B: 512, Points: []ScalingPoint{
		{Threads: 1, Throughput: 100},
		{Threads: 4, Throughput: 380},
	}}
	if ec, kt := SplitCoresThreads(8, weak); kt != 1 || ec != 8 {
		t.Fatalf("sub-linear scaling should keep serial kernels, got %d×%d", ec, kt)
	}
	// Super-linear (cache-fit) scaling wins the whole node.
	strong := KernelProfile{B: 2048, Points: []ScalingPoint{
		{Threads: 1, Throughput: 100},
		{Threads: 4, Throughput: 450},
	}}
	if ec, kt := SplitCoresThreads(8, strong); kt != 4 || ec != 2 {
		t.Fatalf("super-linear scaling should widen kernels, got %d×%d", ec, kt)
	}
	if ec, kt := SplitCoresThreads(0, strong); ec != 1 || kt != 1 {
		t.Fatalf("cores<1 must read as one serial slot, got %d×%d", ec, kt)
	}
}

// TestSearchKernelThreads: the symbolic search accepts and prices the
// widened-kernel candidates, with the co-tuned cores×threads split
// carried on the candidate itself.
func TestSearchKernelThreads(t *testing.T) {
	cl := cluster.Skylake16()
	space := smallSpace()
	space.BlockSizes = []int{256}
	space.KernelThreads = []int{1, 4}
	outs, best, err := Search(cl, semiring.NewFloydWarshall(), 2048, space)
	if err != nil {
		t.Fatal(err)
	}
	// 2 drivers × 1 block × (2 iter widths + 1 recursive) = 6 candidates.
	if len(outs) != 6 {
		t.Fatalf("outcomes = %d, want 6", len(outs))
	}
	sawWide := false
	for _, o := range outs {
		if o.Recursive || o.KernelThreads <= 1 {
			continue
		}
		sawWide = true
		want := cl.Node.Cores / o.KernelThreads
		if o.ExecutorCores != want {
			t.Fatalf("co-tune: threads=%d cores=%d, want %d", o.KernelThreads, o.ExecutorCores, want)
		}
		if !strings.Contains(o.String(), "iter/t4") {
			t.Fatalf("candidate string %q missing iter/t4", o.String())
		}
		if !o.ok() {
			t.Fatalf("widened candidate failed: %+v", o)
		}
		if _, err := Estimate(cl, semiring.NewFloydWarshall(), 2048, o.Candidate); err != nil {
			t.Fatalf("estimate of widened candidate: %v", err)
		}
	}
	if !sawWide {
		t.Fatal("no KernelThreads=4 candidate enumerated")
	}
	if !best.ok() {
		t.Fatalf("best failed: %+v", best)
	}
}
