package autotune

import (
	"dpspark/internal/cluster"
	"dpspark/internal/core"
	"dpspark/internal/costmodel"
	"dpspark/internal/matrix"
	"dpspark/internal/semiring"
	"dpspark/internal/simtime"
)

// Estimate prices a candidate with a closed-form analytic model — no
// driver replay — the paper's "estimates from hardware/software
// parameters using analytical models" path for on-the-fly configuration
// selection (§I, §IV-C). It combines core.Explain's per-iteration
// structure with the kernel/transfer cost model and a coarse utilization
// term. Orders of magnitude faster than Price (microseconds per
// candidate), at the cost of accuracy: TestEstimateTracksPrice pins it
// to within a small factor of the replayed model, which is enough to
// rank configurations.
func Estimate(cl *cluster.Cluster, rule semiring.Rule, n int, cand Candidate) (simtime.Duration, error) {
	cfg := core.Config{
		Rule:            rule,
		BlockSize:       cand.BlockSize,
		Driver:          cand.Driver,
		RecursiveKernel: cand.Recursive,
		RShared:         cand.RShared,
		Threads:         cand.Threads,
	}
	plan, err := core.Explain(n, cfg)
	if err != nil {
		return 0, err
	}
	m := costmodel.New(cl)
	execCores := cand.ExecutorCores
	if execCores <= 0 {
		execCores = cl.Node.Cores
	}
	kcThreads := cand.Threads
	if !cand.Recursive {
		kcThreads = cand.KernelThreads
	}
	kc := costmodel.KernelConfig{
		Recursive: cand.Recursive,
		RShared:   cand.RShared,
		Threads:   kcThreads,
		CoTasks:   execCores,
	}
	b := cand.BlockSize
	tileBytes := int64(b) * int64(b) * 8

	kernelTime := func(kind semiring.Kind) simtime.Duration {
		return m.KernelTime(rule, kind, b, kc)
	}
	occupancy := func(kind semiring.Kind) int { return m.Occupancy(kind, kc) }

	// Node compute capacity in busy-thread units.
	clusterThreads := float64(cl.TotalCores())

	var total simtime.Duration
	for _, it := range plan.Iterations {
		// Kernel compute: thread-seconds spread over the cluster, floored
		// by the serial pivot update (kernel A gates every iteration).
		threadSec := kernelTime(semiring.KindA).Seconds()*float64(occupancy(semiring.KindA)) +
			float64(it.B)*kernelTime(semiring.KindB).Seconds()*float64(occupancy(semiring.KindB)) +
			float64(it.C)*kernelTime(semiring.KindC).Seconds()*float64(occupancy(semiring.KindC)) +
			float64(it.D)*kernelTime(semiring.KindD).Seconds()*float64(occupancy(semiring.KindD))
		compute := simtime.Duration(threadSec / clusterThreads)
		if a := kernelTime(semiring.KindA); a > compute {
			compute = a
		}

		// Communication: the iteration's moved bytes through the relevant
		// channels, spread over the nodes.
		moved := int64(it.MovedTiles) * tileBytes
		perNode := moved / int64(cl.Nodes)
		var comm simtime.Duration
		if cand.Driver == core.CB {
			comm = m.SharedReadTime(moved) + m.SharedWriteTime(moved/int64(cl.Nodes)) +
				m.DiskWriteTime(perNode) + m.DiskReadTime(perNode) + m.NetTime(perNode)
		} else {
			comm = m.DiskWriteTime(perNode) + m.DiskReadTime(perNode) +
				m.NetTime(perNode) + m.SerializeTime(2*perNode/int64(cl.Node.Cores))
		}

		// Framework overheads: stages and jobs per iteration.
		stages := 4.0 // a, panel, interior, checkpoint (IM) / 1 shuffle + 3 jobs (CB)
		jobs := 1.0
		if cand.Driver == core.CB {
			jobs = 3
		}
		overhead := simtime.Duration(stages)*m.StageOverhead() +
			simtime.Duration(jobs)*m.JobOverhead() + m.DriverIterOverhead()

		total += compute + comm + overhead
	}
	return total, nil
}

// EstimateBest ranks the space analytically and returns the winner —
// the on-the-fly selection the paper envisions (microseconds per
// candidate instead of a symbolic replay).
func EstimateBest(cl *cluster.Cluster, rule semiring.Rule, n int, space Space) (Candidate, simtime.Duration, error) {
	outs, err := enumerate(cl, space, n)
	if err != nil {
		return Candidate{}, 0, err
	}
	var best Candidate
	var bestTime simtime.Duration
	first := true
	for _, cand := range outs {
		est, err := Estimate(cl, rule, n, cand)
		if err != nil {
			continue
		}
		if first || est < bestTime {
			best, bestTime, first = cand, est, false
		}
	}
	if first {
		return Candidate{}, 0, errNoCandidates
	}
	return best, bestTime, nil
}

var errNoCandidates = matrixError("autotune: no candidate could be estimated")

type matrixError string

func (e matrixError) Error() string { return string(e) }

// enumerate expands the space into candidates (shared with Search).
func enumerate(cl *cluster.Cluster, space Space, n int) ([]Candidate, error) {
	if len(space.Drivers) == 0 {
		space.Drivers = []core.DriverKind{core.IM, core.CB}
	}
	if len(space.BlockSizes) == 0 {
		space.BlockSizes = []int{256, 512, 1024, 2048, 4096}
	}
	if len(space.RShared) == 0 {
		space.RShared = []int{2, 4, 8, 16}
	}
	if len(space.Threads) == 0 {
		space.Threads = []int{2, 4, 8, 16, 32}
	}
	if len(space.ExecutorCores) == 0 {
		space.ExecutorCores = []int{cl.Node.Cores}
	}
	if len(space.KernelThreads) == 0 {
		space.KernelThreads = []int{1}
	}
	var cands []Candidate
	for _, d := range space.Drivers {
		for _, b := range space.BlockSizes {
			if b > n {
				continue
			}
			for _, cores := range space.ExecutorCores {
				if space.IncludeIterative {
					for _, kt := range space.KernelThreads {
						// Widening the kernel shrinks the task slots: the
						// candidate carries the co-tuned cores×threads
						// split explicitly so pricing sees it.
						ec := cores
						if kt > 1 {
							ec = cores / kt
							if ec < 1 {
								ec = 1
							}
						}
						cands = append(cands, Candidate{
							Driver: d, BlockSize: b,
							ExecutorCores: ec, KernelThreads: kt,
						})
					}
				}
				for _, rs := range space.RShared {
					for _, th := range space.Threads {
						cands = append(cands, Candidate{
							Driver: d, BlockSize: b, Recursive: true,
							RShared: rs, Threads: th, ExecutorCores: cores,
						})
					}
				}
			}
		}
	}
	if len(cands) == 0 {
		return nil, errEmptySpace
	}
	return cands, nil
}

var errEmptySpace = matrixError("autotune: empty candidate space")

// Grid is re-exported for estimator callers needing the grid dimension.
func Grid(n, b int) int { return matrix.Grid(n, b) }
