package autotune

import (
	"strings"
	"testing"

	"dpspark/internal/cluster"
	"dpspark/internal/core"
	"dpspark/internal/semiring"
)

func smallSpace() Space {
	return Space{
		Drivers:          []core.DriverKind{core.IM, core.CB},
		BlockSizes:       []int{256, 512},
		RShared:          []int{4},
		Threads:          []int{8},
		IncludeIterative: true,
	}
}

func TestSearchFindsBest(t *testing.T) {
	outs, best, err := Search(cluster.Skylake16(), semiring.NewFloydWarshall(), 2048, smallSpace())
	if err != nil {
		t.Fatal(err)
	}
	// 2 drivers × 2 blocks × (1 iter + 1 recursive) = 8 candidates.
	if len(outs) != 8 {
		t.Fatalf("outcomes = %d", len(outs))
	}
	if !best.ok() {
		t.Fatalf("best failed: %+v", best)
	}
	for _, o := range outs {
		if o.ok() && o.Time < best.Time {
			t.Fatalf("best is not minimal: %v < %v", o.Time, best.Time)
		}
	}
}

func TestSearchSkipsOversizedBlocks(t *testing.T) {
	space := smallSpace()
	space.BlockSizes = []int{4096} // larger than the problem
	if _, _, err := Search(cluster.Skylake16(), semiring.NewGaussian(), 1024, space); err == nil {
		t.Fatal("expected empty-space error")
	}
}

func TestCandidateString(t *testing.T) {
	c := Candidate{Driver: core.CB, BlockSize: 1024, Recursive: true, RShared: 4, Threads: 8, ExecutorCores: 32}
	s := c.String()
	for _, want := range []string{"CB", "1024", "rec4", "omp8", "cores=32"} {
		if !strings.Contains(s, want) {
			t.Fatalf("candidate string %q missing %q", s, want)
		}
	}
	it := Candidate{Driver: core.IM, BlockSize: 512}
	if !strings.Contains(it.String(), "iter") {
		t.Fatalf("iterative string = %q", it.String())
	}
}

func TestPriceDefaults(t *testing.T) {
	o := Price(cluster.Haswell16(), semiring.NewGaussian(), 1024,
		Candidate{Driver: core.CB, BlockSize: 256, ExecutorCores: 20})
	if o.Err != nil || o.Time <= 0 {
		t.Fatalf("price: %+v", o)
	}
}

func TestDefaultSpace(t *testing.T) {
	s := DefaultSpace(cluster.Skylake16())
	if len(s.BlockSizes) != 5 || len(s.RShared) != 4 || len(s.Threads) != 5 {
		t.Fatalf("default space = %+v", s)
	}
	if !s.IncludeIterative || s.ExecutorCores[0] != 32 {
		t.Fatal("default space settings")
	}
}
