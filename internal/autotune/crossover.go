package autotune

import (
	"fmt"
	"math/rand"
	"time"

	"dpspark/internal/kernels"
	"dpspark/internal/matrix"
	"dpspark/internal/semiring"
)

// This file is the measured (not modelled) half of the tuner: it times
// real single-tile kernel executions to find where the row-band parallel
// split starts paying for its scheduling cost, and how a node's cores
// are best divided between task slots and kernel threads. The analytic
// Estimate path ranks whole configurations; these measurements calibrate
// the two knobs the analytic model cannot know for the machine it runs
// on — the serial↔parallel crossover tile size and the per-thread
// speedup curve.

// ScalingPoint is one measured sample of the single-tile scaling curve:
// the best-of-reps wall time of a full kind-D tile update at the given
// pool width.
type ScalingPoint struct {
	Threads int
	Time    time.Duration
	// Throughput is element updates per second, b³/Time.
	Throughput float64
}

// KernelProfile is the measured single-tile scaling of the iterative
// kernel at one tile size.
type KernelProfile struct {
	B      int
	Points []ScalingPoint
}

// MeasureKernelScaling times a full kind-D update of one b×b tile under
// the rule for each pool width in threads (best of reps, reps < 1 reads
// as 1) and returns the profile. Operands are deterministic and the
// destination is reset between reps, so every sample executes the exact
// same instruction stream.
func MeasureKernelScaling(rule semiring.Rule, b int, threads []int, reps int) KernelProfile {
	if reps < 1 {
		reps = 1
	}
	rng := rand.New(rand.NewSource(int64(b)))
	fill := func() *matrix.Tile {
		t := matrix.NewTile(b)
		for i := range t.Data {
			// Away from zero so Gaussian pivots never divide by ~0.
			t.Data[i] = 0.5 + rng.Float64()
		}
		return t
	}
	x0, u, v, w := fill(), fill(), fill(), fill()
	work := matrix.NewTile(b)

	prof := KernelProfile{B: b}
	for _, t := range threads {
		if t < 1 {
			t = 1
		}
		pool := kernels.NewPool(t)
		var best time.Duration
		for rep := 0; rep < reps; rep++ {
			x0.View().CopyTo(work.View())
			start := time.Now()
			kernels.LoopPool(pool, rule, semiring.KindD, work.View(), u.View(), v.View(), w.View())
			if el := time.Since(start); best == 0 || el < best {
				best = el
			}
		}
		fb := float64(b)
		prof.Points = append(prof.Points, ScalingPoint{
			Threads:    t,
			Time:       best,
			Throughput: fb * fb * fb / best.Seconds(),
		})
	}
	return prof
}

// point returns the sample at the given width, if measured.
func (p KernelProfile) point(threads int) (ScalingPoint, bool) {
	for _, pt := range p.Points {
		if pt.Threads == threads {
			return pt, true
		}
	}
	return ScalingPoint{}, false
}

// BestThreads returns the measured-fastest pool width, preferring fewer
// threads on ties (narrower kernels leave more task slots). Returns 1
// for an empty profile.
func (p KernelProfile) BestThreads() int {
	best, bestTp := 1, 0.0
	for _, pt := range p.Points {
		if pt.Throughput > bestTp || (pt.Throughput == bestTp && pt.Threads < best) {
			best, bestTp = pt.Threads, pt.Throughput
		}
	}
	return best
}

// Speedup returns the measured speedup of the given width over the
// serial sample (1 when either sample is missing).
func (p KernelProfile) Speedup(threads int) float64 {
	base, ok1 := p.point(1)
	pt, ok2 := p.point(threads)
	if !ok1 || !ok2 || base.Throughput <= 0 {
		return 1
	}
	return pt.Throughput / base.Throughput
}

// String renders the profile as a compact scaling curve.
func (p KernelProfile) String() string {
	s := fmt.Sprintf("b=%d:", p.B)
	for _, pt := range p.Points {
		s += fmt.Sprintf(" t%d=%v", pt.Threads, pt.Time.Round(time.Microsecond))
	}
	return s
}

// Crossover measures the scaling curve at each tile size (ascending)
// and returns the smallest size where width-threads kernels beat serial
// by more than the noise margin — the tile size below which LoopPool
// callers should stay serial. Returns 0 when parallel never wins (on a
// single-core machine, always 0).
func Crossover(rule semiring.Rule, threads int, sizes []int, reps int) int {
	if threads <= 1 {
		return 0
	}
	for _, b := range sizes {
		prof := MeasureKernelScaling(rule, b, []int{1, threads}, reps)
		// 10% over serial: below that the split is within run-to-run
		// noise and not worth the narrower task slots.
		if prof.Speedup(threads) > 1.10 {
			return b
		}
	}
	return 0
}

// SplitCoresThreads picks the cores×threads division of one node that
// maximises modelled node throughput: slots(t) × speedup(t) with
// slots(t) = cores/t, over the widths the profile measured. Ties prefer
// narrower kernels. The returned pair always satisfies
// execCores ≥ 1, kernelThreads ≥ 1 and execCores×kernelThreads ≤ cores
// (unless cores < 1, which reads as 1).
func SplitCoresThreads(cores int, p KernelProfile) (execCores, kernelThreads int) {
	if cores < 1 {
		cores = 1
	}
	bestT, bestScore := 1, float64(cores)
	for _, pt := range p.Points {
		t := pt.Threads
		if t <= 1 || t > cores {
			continue
		}
		score := float64(cores/t) * p.Speedup(t)
		if score > bestScore {
			bestT, bestScore = t, score
		}
	}
	execCores = cores / bestT
	if execCores < 1 {
		execCores = 1
	}
	return execCores, bestT
}
