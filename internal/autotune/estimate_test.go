package autotune

import (
	"testing"

	"dpspark/internal/cluster"
	"dpspark/internal/core"
	"dpspark/internal/semiring"
)

// TestEstimateTracksPrice: the closed-form estimator must land within a
// small factor of the replayed symbolic model across representative
// candidates — enough accuracy to rank configurations on the fly.
func TestEstimateTracksPrice(t *testing.T) {
	cl := cluster.Skylake16()
	n := 16384
	cands := []Candidate{
		{Driver: core.IM, BlockSize: 512, ExecutorCores: 32},
		{Driver: core.CB, BlockSize: 512, ExecutorCores: 32},
		{Driver: core.IM, BlockSize: 1024, Recursive: true, RShared: 16, Threads: 8, ExecutorCores: 32},
		{Driver: core.CB, BlockSize: 2048, Recursive: true, RShared: 4, Threads: 16, ExecutorCores: 32},
	}
	for _, bench := range []semiring.Rule{semiring.NewFloydWarshall(), semiring.NewGaussian()} {
		for _, cand := range cands {
			est, err := Estimate(cl, bench, n, cand)
			if err != nil {
				t.Fatal(err)
			}
			priced := Price(cl, bench, n, cand)
			if priced.Err != nil {
				t.Fatal(priced.Err)
			}
			ratio := est.Seconds() / priced.Time.Seconds()
			// Coarse by design: no straggler/starvation modelling.
			if ratio < 0.25 || ratio > 4.0 {
				t.Fatalf("%s %v: estimate %v vs priced %v (ratio %.2f)",
					bench.Name(), cand, est, priced.Time, ratio)
			}
		}
	}
}

// TestEstimateRanksKernelFamilies: the estimator must agree with the
// replayed model on the paper's headline ordering — recursive kernels
// beat iterative at large blocks.
func TestEstimateRanksKernelFamilies(t *testing.T) {
	cl := cluster.Skylake16()
	rule := semiring.NewFloydWarshall()
	iter, err := Estimate(cl, rule, 32768, Candidate{Driver: core.IM, BlockSize: 2048, ExecutorCores: 32})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Estimate(cl, rule, 32768, Candidate{
		Driver: core.IM, BlockSize: 2048, Recursive: true, RShared: 16, Threads: 8, ExecutorCores: 32})
	if err != nil {
		t.Fatal(err)
	}
	if rec >= iter {
		t.Fatalf("estimator must rank recursive (%v) above iterative (%v) at block 2048", rec, iter)
	}
}

// TestEstimateBestIsReasonable: the analytically chosen candidate must
// price (with the full model) within 2× of the exhaustively found best.
func TestEstimateBestIsReasonable(t *testing.T) {
	cl := cluster.Skylake16()
	rule := semiring.NewGaussian()
	n := 16384
	space := Space{
		Drivers:          []core.DriverKind{core.IM, core.CB},
		BlockSizes:       []int{512, 1024, 2048},
		RShared:          []int{4, 16},
		Threads:          []int{8},
		IncludeIterative: true,
	}
	estBest, _, err := EstimateBest(cl, rule, n, space)
	if err != nil {
		t.Fatal(err)
	}
	_, trueBest, err := Search(cl, rule, n, space)
	if err != nil {
		t.Fatal(err)
	}
	chosen := Price(cl, rule, n, estBest)
	if chosen.Err != nil {
		t.Fatal(chosen.Err)
	}
	if chosen.Time.Seconds() > 2*trueBest.Time.Seconds() {
		t.Fatalf("estimator's pick %v prices at %v, exhaustive best %v at %v",
			estBest, chosen.Time, trueBest.Candidate, trueBest.Time)
	}
}

func TestEstimateEmptySpace(t *testing.T) {
	if _, _, err := EstimateBest(cluster.Skylake16(), semiring.NewGaussian(), 128,
		Space{BlockSizes: []int{4096}, RShared: []int{4}, Threads: []int{8}}); err == nil {
		t.Fatal("expected error")
	}
	if Grid(1000, 256) != 4 {
		t.Fatal("Grid re-export")
	}
}
