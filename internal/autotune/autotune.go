// Package autotune searches the paper's tuning space — block size r,
// kernel type, r_shared, OMP_NUM_THREADS, executor-cores and driver — by
// pricing candidate configurations on the cluster model (the paper §IV-C:
// "the decomposition parameter can be tuned ... using estimates from
// hardware/software parameters based on analytical models"). Each
// candidate is a full symbolic run of the actual drivers, so the search
// sees every modelled effect: cache cliffs, oversubscription, shuffle
// versus broadcast traffic, timeouts and staging-disk failures.
package autotune

import (
	"fmt"
	"sort"

	"dpspark/internal/cluster"
	"dpspark/internal/core"
	"dpspark/internal/matrix"
	"dpspark/internal/rdd"
	"dpspark/internal/semiring"
	"dpspark/internal/simtime"
)

// Space enumerates candidate settings. Zero-value fields fall back to
// the paper's sweep (§V-C).
type Space struct {
	// Drivers to try (default: IM and CB).
	Drivers []core.DriverKind
	// BlockSizes to try (default: 256, 512, 1024, 2048, 4096).
	BlockSizes []int
	// RShared fan-outs for recursive kernels (default: 2, 4, 8, 16).
	RShared []int
	// Threads values for recursive kernels (default: 2, 4, 8, 16, 32).
	Threads []int
	// ExecutorCores settings (default: all physical cores).
	ExecutorCores []int
	// KernelThreads widths for iterative kernels (default: 1, serial).
	// Each width > 1 co-tunes the candidate's ExecutorCores down to
	// cores/threads so task slots × kernel threads covers the node once —
	// the paper's cores×threads trade-off.
	KernelThreads []int
	// IncludeIterative adds the iterative-kernel candidates (default on
	// via DefaultSpace).
	IncludeIterative bool
}

// DefaultSpace returns the paper's sweep.
func DefaultSpace(c *cluster.Cluster) Space {
	return Space{
		Drivers:          []core.DriverKind{core.IM, core.CB},
		BlockSizes:       []int{256, 512, 1024, 2048, 4096},
		RShared:          []int{2, 4, 8, 16},
		Threads:          []int{2, 4, 8, 16, 32},
		ExecutorCores:    []int{c.Node.Cores},
		KernelThreads:    []int{1, 2, 4, 8},
		IncludeIterative: true,
	}
}

// Candidate is one point in the tuning space.
type Candidate struct {
	Driver        core.DriverKind
	BlockSize     int
	Recursive     bool
	RShared       int
	Threads       int
	ExecutorCores int
	// KernelThreads is the iterative kernel's row-band pool width
	// (0 or 1: serial; ignored for recursive kernels, which use Threads).
	KernelThreads int
}

// String renders the candidate compactly.
func (c Candidate) String() string {
	kernel := "iter"
	if c.Recursive {
		kernel = fmt.Sprintf("rec%d/omp%d", c.RShared, c.Threads)
	} else if c.KernelThreads > 1 {
		kernel = fmt.Sprintf("iter/t%d", c.KernelThreads)
	}
	return fmt.Sprintf("%s b=%d %s cores=%d", c.Driver, c.BlockSize, kernel, c.ExecutorCores)
}

// Outcome is a priced candidate.
type Outcome struct {
	Candidate
	// Time is the modelled job time; meaningless when Err != nil.
	Time simtime.Duration
	// TimedOut marks runs beyond the 8-hour experiment bound.
	TimedOut bool
	// Err reports modelled failures (staging disk full, ...).
	Err error
}

// ok reports whether the outcome completed within bounds.
func (o Outcome) ok() bool { return o.Err == nil && !o.TimedOut }

// Search prices every candidate for an n×n problem under the rule on the
// cluster and returns all outcomes (fastest first, failures last) plus
// the best. It errors only if no candidate completes.
func Search(cl *cluster.Cluster, rule semiring.Rule, n int, space Space) ([]Outcome, Outcome, error) {
	cands, err := enumerate(cl, space, n)
	if err != nil {
		return nil, Outcome{}, fmt.Errorf("autotune: %w (n=%d)", err, n)
	}

	outcomes := make([]Outcome, 0, len(cands))
	for _, cand := range cands {
		outcomes = append(outcomes, Price(cl, rule, n, cand))
	}
	sort.SliceStable(outcomes, func(i, j int) bool {
		oi, oj := outcomes[i], outcomes[j]
		if oi.ok() != oj.ok() {
			return oi.ok()
		}
		return oi.Time < oj.Time
	})
	if !outcomes[0].ok() {
		return outcomes, outcomes[0], fmt.Errorf("autotune: no candidate completed within bounds")
	}
	return outcomes, outcomes[0], nil
}

// Price runs one candidate symbolically and returns its outcome.
func Price(cl *cluster.Cluster, rule semiring.Rule, n int, cand Candidate) Outcome {
	ctx := rdd.NewContext(rdd.Conf{
		Cluster:       cl,
		ExecutorCores: cand.ExecutorCores,
		KernelThreads: cand.KernelThreads,
	})
	cfg := core.Config{
		Rule:            rule,
		BlockSize:       cand.BlockSize,
		Driver:          cand.Driver,
		RecursiveKernel: cand.Recursive,
		RShared:         cand.RShared,
		Threads:         cand.Threads,
		KernelThreads:   cand.KernelThreads,
	}
	bl := matrix.NewSymbolicBlocked(n, cand.BlockSize)
	_, stats, err := core.Run(ctx, bl, cfg)
	out := Outcome{Candidate: cand, Err: err}
	if stats != nil {
		out.Time = stats.Time
		out.TimedOut = stats.TimedOut
	}
	return out
}
