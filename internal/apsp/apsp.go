// Package apsp solves the all-pairs shortest-path problem — the paper's
// graph benchmark — on the GEP framework: Floyd-Warshall over the
// tropical semiring, generalized (like the paper, which extends the
// Schoeneman–Zola solver from undirected to directed graphs) to any
// closed semiring and arbitrary directed inputs. It also provides path
// reconstruction from the distance matrix.
package apsp

import (
	"fmt"
	"math"

	"dpspark/internal/core"
	"dpspark/internal/graph"
	"dpspark/internal/matrix"
	"dpspark/internal/rdd"
	"dpspark/internal/semiring"
)

// Solver configures FW-APSP runs.
type Solver struct {
	// Config is the GEP execution configuration; Rule defaults to the
	// min-plus Floyd-Warshall rule when nil.
	Config core.Config
}

// New returns a solver with the given execution configuration.
func New(cfg core.Config) *Solver {
	if cfg.Rule == nil {
		cfg.Rule = semiring.NewFloydWarshall()
	}
	return &Solver{Config: cfg}
}

// Solve computes all-pairs shortest distances for the directed graph.
// The result matrix holds d(i,j), +∞ where j is unreachable from i.
func (s *Solver) Solve(ctx *rdd.Context, g *graph.Graph) (*matrix.Dense, *core.Stats, error) {
	d := g.DistanceMatrix()
	return s.SolveMatrix(ctx, d)
}

// SolveMatrix runs the solver on a pre-built distance matrix (d⁰ of the
// closed-semiring formulation).
func (s *Solver) SolveMatrix(ctx *rdd.Context, d *matrix.Dense) (*matrix.Dense, *core.Stats, error) {
	cfg := s.Config
	if cfg.BlockSize < 1 {
		return nil, nil, fmt.Errorf("apsp: BlockSize must be set")
	}
	bl := matrix.Block(d, cfg.BlockSize, cfg.Rule.Pad(), cfg.Rule.PadDiag())
	out, stats, err := core.Run(ctx, bl, cfg)
	if err != nil {
		return nil, stats, err
	}
	return out.ToDense(), stats, nil
}

// SolveSymbolic prices an n-vertex run on the configured cluster without
// computing distances (model mode).
func (s *Solver) SolveSymbolic(ctx *rdd.Context, n int) (*core.Stats, error) {
	bl := matrix.NewSymbolicBlocked(n, s.Config.BlockSize)
	_, stats, err := core.Run(ctx, bl, s.Config)
	return stats, err
}

// ReconstructPath returns the vertices of one shortest path from u to v
// given the original graph and the solved distance matrix, or nil if v is
// unreachable. It walks greedily: from u it follows any edge (u,w) with
// d0(u,w) + d(w,v) = d(u,v).
func ReconstructPath(g *graph.Graph, dist *matrix.Dense, u, v int) []int {
	const eps = 1e-9
	if u < 0 || v < 0 || u >= g.N || v >= g.N || math.IsInf(dist.At(u, v), 1) {
		return nil
	}
	path := []int{u}
	cur := u
	for cur != v {
		next := -1
		for _, e := range g.Adj[cur] {
			if math.Abs(e.Weight+dist.At(e.To, v)-dist.At(cur, v)) <= eps {
				next = e.To
				break
			}
		}
		if next == -1 || len(path) > g.N {
			return nil // inconsistent inputs
		}
		path = append(path, next)
		cur = next
	}
	return path
}

// PathLength sums the edge weights along a reconstructed path using the
// cheapest parallel edges; it validates reconstruction in tests.
func PathLength(g *graph.Graph, path []int) float64 {
	var total float64
	for i := 0; i+1 < len(path); i++ {
		best := math.Inf(1)
		for _, e := range g.Adj[path[i]] {
			if e.To == path[i+1] && e.Weight < best {
				best = e.Weight
			}
		}
		total += best
	}
	return total
}
