package apsp

import (
	"math"
	"math/rand"
	"testing"

	"dpspark/internal/cluster"
	"dpspark/internal/core"
	"dpspark/internal/graph"
	"dpspark/internal/matrix"
	"dpspark/internal/rdd"
	"dpspark/internal/semimat"
	"dpspark/internal/semiring"
)

func newCtx() *rdd.Context {
	return rdd.NewContext(rdd.Conf{Cluster: cluster.Local(4)})
}

func TestSolveMatchesDijkstra(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, cfgs := range []core.Config{
		{BlockSize: 8, Driver: core.IM},
		{BlockSize: 8, Driver: core.CB, RecursiveKernel: true, RShared: 2, Base: 4, Threads: 2},
	} {
		g := graph.Random(30, 0.2, 1, 10, rng)
		s := New(cfgs)
		got, stats, err := s.Solve(newCtx(), g)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Time <= 0 {
			t.Fatal("no virtual time")
		}
		want := g.APSPReference()
		if diff := got.MaxAbsDiff(want); diff > 1e-9 {
			t.Fatalf("APSP vs Dijkstra diff %v", diff)
		}
	}
}

func TestSolveDirectedAsymmetric(t *testing.T) {
	// A 3-cycle with one-way edges: the directed generalization must not
	// symmetrize distances.
	g := graph.New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 0, 1)
	s := New(core.Config{BlockSize: 2, Driver: core.IM})
	d, _, err := s.Solve(newCtx(), g)
	if err != nil {
		t.Fatal(err)
	}
	if d.At(0, 1) != 1 || d.At(1, 0) != 2 {
		t.Fatalf("directed distances wrong: %v / %v", d.At(0, 1), d.At(1, 0))
	}
}

func TestSolveOverMaxMinSemiring(t *testing.T) {
	// Widest-path (bottleneck) APSP over the max-min semiring.
	g := graph.New(3)
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 2, 3)
	g.AddEdge(0, 2, 2)
	rule := semiring.SemiringRule{S: semiring.MaxMin()}
	s := New(core.Config{Rule: rule, BlockSize: 2, Driver: core.CB})
	n := 3
	capacities := make([]float64, n*n)
	for i := range capacities {
		capacities[i] = math.Inf(-1)
	}
	for i := 0; i < n; i++ {
		capacities[i*n+i] = math.Inf(1)
	}
	capacities[0*n+1] = 5
	capacities[1*n+2] = 3
	capacities[0*n+2] = 2
	got, _, err := s.SolveMatrix(newCtx(), matrix.FromSlice(n, capacities))
	if err != nil {
		t.Fatal(err)
	}
	if got.At(0, 2) != 3 { // widest 0→2 path is via 1: min(5,3)=3 > direct 2
		t.Fatalf("widest path 0→2 = %v, want 3", got.At(0, 2))
	}
	_ = g
}

func TestPathReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	g := graph.Grid(4, 5, 1, 10, rng)
	s := New(core.Config{BlockSize: 8, Driver: core.IM})
	d, _, err := s.Solve(newCtx(), g)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		u, v := rng.Intn(g.N), rng.Intn(g.N)
		path := ReconstructPath(g, d, u, v)
		if path == nil {
			t.Fatalf("grid is connected; no path %d→%d", u, v)
		}
		if path[0] != u || path[len(path)-1] != v {
			t.Fatalf("path endpoints wrong: %v", path)
		}
		if got := PathLength(g, path); math.Abs(got-d.At(u, v)) > 1e-9 {
			t.Fatalf("path length %v != distance %v", got, d.At(u, v))
		}
	}
}

func TestReconstructPathUnreachable(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1, 1)
	s := New(core.Config{BlockSize: 2, Driver: core.IM})
	d, _, err := s.Solve(newCtx(), g)
	if err != nil {
		t.Fatal(err)
	}
	if ReconstructPath(g, d, 1, 0) != nil {
		t.Fatal("unreachable pair must yield nil path")
	}
	if ReconstructPath(g, d, -1, 0) != nil {
		t.Fatal("bad vertex must yield nil path")
	}
}

// TestSolveMatchesRepeatedSquaring cross-validates the GEP solver against
// the independent semiring matrix-closure oracle (R-Kleene style).
func TestSolveMatchesRepeatedSquaring(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	g := graph.Random(28, 0.2, 1, 9, rng)
	got, _, err := New(core.Config{BlockSize: 7, Driver: core.CB}).Solve(newCtx(), g)
	if err != nil {
		t.Fatal(err)
	}
	want := semimat.Closure(semiring.MinPlus(), g.DistanceMatrix())
	if diff := got.MaxAbsDiff(want); diff > 1e-9 {
		t.Fatalf("GEP vs repeated-squaring closure diff %v", diff)
	}
}

func TestSolveSymbolic(t *testing.T) {
	ctx := rdd.NewContext(rdd.Conf{Cluster: cluster.Skylake16()})
	s := New(core.Config{BlockSize: 512, Driver: core.IM})
	stats, err := s.SolveSymbolic(ctx, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Time <= 0 || stats.Iterations != 4 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestMissingBlockSize(t *testing.T) {
	s := New(core.Config{Driver: core.IM})
	if _, _, err := s.Solve(newCtx(), graph.New(2)); err == nil {
		t.Fatal("expected BlockSize error")
	}
}
