package mpifw

import (
	"math/rand"
	"testing"

	"dpspark/internal/cluster"
	"dpspark/internal/graph"
	"dpspark/internal/simtime"
)

func TestSolveMatchesDijkstra(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	g := graph.Random(40, 0.2, 1, 9, rng)
	for _, cfg := range []Config{
		{BlockSize: 8},
		{BlockSize: 10, Recursive: true, RShared: 2, Base: 5, Threads: 2},
	} {
		got, modelTime, err := Solve(cluster.Skylake16(), g.DistanceMatrix(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if modelTime <= 0 {
			t.Fatal("no modelled time")
		}
		if diff := got.MaxAbsDiff(g.APSPReference()); diff > 1e-9 {
			t.Fatalf("diff %v", diff)
		}
	}
}

func TestBlockSizeRequired(t *testing.T) {
	if _, _, err := Solve(cluster.Skylake16(), graph.New(4).DistanceMatrix(), Config{}); err == nil {
		t.Fatal("expected error")
	}
}

// TestModelScalesWithNodes: more ranks reduce the modelled time (strong
// scaling of the BSP solver at fixed problem size).
func TestModelScalesWithNodes(t *testing.T) {
	cfg := Config{BlockSize: 512, Recursive: true, RShared: 4, Threads: 8}
	t16 := ModelTime(cluster.Skylake16(), 16384, cfg)
	t64 := ModelTime(cluster.Skylake16().WithNodes(64), 16384, cfg)
	if t64 >= t16 {
		t.Fatalf("64 nodes (%v) should beat 16 (%v)", t64, t16)
	}
	if t64 < simtime.Duration(float64(t16)/8) {
		t.Fatalf("1-D FW cannot scale superlinearly: %v vs %v", t64, t16)
	}
}
