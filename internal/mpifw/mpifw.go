// Package mpifw is a communication-efficient, MPI-style bulk-synchronous
// blocked Floyd-Warshall solver — the HPC comparator of the paper's
// related work (§III: Solomonik et al.'s distributed-memory APSP
// outperforms the Spark solver; Anderson et al. report 3.1–17.7× from
// offloading Spark computations to MPI).
//
// The solver distributes block rows over the nodes (1-D decomposition).
// Each iteration k is one superstep: the owner of block row k updates the
// pivot tile (kernel A) and the row panel (kernels B), broadcasts the
// panel, and every node then updates its own column tiles (C) and
// interior tiles (D) locally. Communication is one panel broadcast per
// iteration — no shuffle staging, no task scheduling, no serialization
// layer — so the modelled gap to the Spark drivers isolates exactly the
// framework overheads the related work measures.
package mpifw

import (
	"fmt"

	"dpspark/internal/cluster"
	"dpspark/internal/costmodel"
	"dpspark/internal/kernels"
	"dpspark/internal/matrix"
	"dpspark/internal/semiring"
	"dpspark/internal/simtime"
)

// Config tunes the solver.
type Config struct {
	// BlockSize is the tile dimension b.
	BlockSize int
	// Recursive selects r_shared-way R-DP kernels inside each rank.
	Recursive bool
	// RShared, Base, Threads configure the recursive kernels.
	RShared, Base, Threads int
}

// kernelConfig builds the cost-model kernel description. Ranks run one
// kernel at a time per thread team (no Spark task packing), so CoTasks
// reflects the per-node kernel concurrency: cores/threads teams.
func (cfg Config) kernelConfig(cl *cluster.Cluster) costmodel.KernelConfig {
	teams := 1
	if !cfg.Recursive || cfg.Threads < 1 {
		teams = cl.Node.Cores
	} else if cfg.Threads < cl.Node.Cores {
		teams = cl.Node.Cores / cfg.Threads
	}
	return costmodel.KernelConfig{
		Recursive: cfg.Recursive,
		RShared:   cfg.RShared,
		Base:      cfg.Base,
		Threads:   cfg.Threads,
		CoTasks:   teams,
	}
}

// Solve runs blocked FW on a dense matrix: the computation executes for
// real (single process) while the returned duration prices the BSP
// execution on the cluster.
func Solve(cl *cluster.Cluster, d *matrix.Dense, cfg Config) (*matrix.Dense, simtime.Duration, error) {
	if cfg.BlockSize < 1 {
		return nil, 0, fmt.Errorf("mpifw: BlockSize must be set")
	}
	rule := semiring.NewFloydWarshall()
	bl := matrix.Block(d, cfg.BlockSize, rule.Pad(), rule.PadDiag())
	kernels.RunLocal(bl, cfg.exec(rule))
	t := ModelTime(cl, bl.N, cfg)
	return bl.ToDense(), t, nil
}

// exec builds the per-rank kernel implementation.
func (cfg Config) exec(rule semiring.Rule) kernels.Exec {
	if cfg.Recursive {
		base := cfg.Base
		if base < 1 {
			base = 64
		}
		return kernels.NewRecursiveExec(rule, cfg.RShared, base, cfg.Threads)
	}
	return kernels.NewIterative(rule)
}

// ModelTime prices an n×n run on the cluster: the paper-scale comparator.
func ModelTime(cl *cluster.Cluster, n int, cfg Config) simtime.Duration {
	rule := semiring.NewFloydWarshall()
	m := costmodel.New(cl)
	kc := cfg.kernelConfig(cl)
	b := cfg.BlockSize
	r := matrix.Grid(n, b)
	p := cl.Nodes

	tA := m.KernelTime(rule, semiring.KindA, b, kc)
	tB := m.KernelTime(rule, semiring.KindB, b, kc)
	tC := m.KernelTime(rule, semiring.KindC, b, kc)
	tD := m.KernelTime(rule, semiring.KindD, b, kc)

	// Per-node kernel concurrency: thread teams for recursive kernels,
	// one kernel per core otherwise.
	teams := kc.CoTasks

	var total simtime.Duration
	rowsPerNode := (r + p - 1) / p
	for k := 0; k < r; k++ {
		// Owner: pivot then the row panel (r-1 B kernels over its teams).
		owner := tA + par(int64(r-1), teams, tB)
		// Broadcast the updated panel (r tiles) tree-wise: each node
		// receives r·b² doubles; the tree depth multiplies latency only.
		panelBytes := int64(r) * int64(b) * int64(b) * 8
		bcast := m.NetTime(panelBytes)
		// Every node: its C tiles (≤ rowsPerNode) and D tiles.
		local := par(int64(rowsPerNode), teams, tC) +
			par(int64(rowsPerNode)*int64(r-1), teams, tD)
		// Superstep barrier.
		barrier := simtime.Duration(cl.Net.LatencySec * 4)
		total += owner + bcast + local + barrier
	}
	return total
}

// par prices count kernel invocations spread over `teams` parallel teams.
func par(count int64, teams int, each simtime.Duration) simtime.Duration {
	if count <= 0 {
		return 0
	}
	waves := (count + int64(teams) - 1) / int64(teams)
	return simtime.Duration(float64(waves) * float64(each))
}
