package cluster

import (
	"strings"
	"testing"
)

func TestPresets(t *testing.T) {
	sky := Skylake16()
	if sky.Nodes != 16 || sky.Node.Cores != 32 {
		t.Fatalf("skylake shape: %d nodes × %d cores", sky.Nodes, sky.Node.Cores)
	}
	if sky.TotalCores() != 512 {
		t.Fatalf("skylake cores = %d", sky.TotalCores())
	}
	if sky.DefaultPartitions() != 1024 { // paper §V-B: 2× total cores
		t.Fatalf("skylake partitions = %d", sky.DefaultPartitions())
	}

	has := Haswell16()
	if has.TotalCores() != 320 {
		t.Fatalf("haswell cores = %d", has.TotalCores())
	}
	if has.DefaultPartitions() != 640 { // paper: 2×16×20 = 640
		t.Fatalf("haswell partitions = %d", has.DefaultPartitions())
	}
	// The portability cluster is strictly weaker where it matters.
	if !(has.Node.L2Bytes < sky.Node.L2Bytes) {
		t.Fatal("haswell L2 must be smaller than skylake L2")
	}
	if !(has.Node.Disk.WriteBW < sky.Node.Disk.WriteBW) {
		t.Fatal("haswell spinning disk must be slower than skylake SSD")
	}
	if !(has.ExecutorMemBytes < sky.ExecutorMemBytes) {
		t.Fatal("haswell executor memory must be smaller")
	}
}

func TestWithNodes(t *testing.T) {
	c := Skylake16().WithNodes(64)
	if c.Nodes != 64 || c.TotalCores() != 64*32 {
		t.Fatalf("WithNodes: %d nodes", c.Nodes)
	}
	if Skylake16().Nodes != 16 {
		t.Fatal("WithNodes must not mutate the receiver")
	}
	if !strings.Contains(c.Name, "64") {
		t.Fatalf("name = %q", c.Name)
	}
}

func TestLocal(t *testing.T) {
	c := Local(0)
	if c.Node.Cores != 1 {
		t.Fatal("Local clamps cores to 1")
	}
	if Local(8).TotalCores() != 8 {
		t.Fatal("Local cores")
	}
}

func TestString(t *testing.T) {
	s := Skylake16().String()
	if !strings.Contains(s, "skylake-16") || !strings.Contains(s, "192GB") {
		t.Fatalf("String = %q", s)
	}
}
