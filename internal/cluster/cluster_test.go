package cluster

import (
	"strings"
	"testing"
)

func TestPresets(t *testing.T) {
	sky := Skylake16()
	if sky.Nodes != 16 || sky.Node.Cores != 32 {
		t.Fatalf("skylake shape: %d nodes × %d cores", sky.Nodes, sky.Node.Cores)
	}
	if sky.TotalCores() != 512 {
		t.Fatalf("skylake cores = %d", sky.TotalCores())
	}
	if sky.DefaultPartitions() != 1024 { // paper §V-B: 2× total cores
		t.Fatalf("skylake partitions = %d", sky.DefaultPartitions())
	}

	has := Haswell16()
	if has.TotalCores() != 320 {
		t.Fatalf("haswell cores = %d", has.TotalCores())
	}
	if has.DefaultPartitions() != 640 { // paper: 2×16×20 = 640
		t.Fatalf("haswell partitions = %d", has.DefaultPartitions())
	}
	// The portability cluster is strictly weaker where it matters.
	if !(has.Node.L2Bytes < sky.Node.L2Bytes) {
		t.Fatal("haswell L2 must be smaller than skylake L2")
	}
	if !(has.Node.Disk.WriteBW < sky.Node.Disk.WriteBW) {
		t.Fatal("haswell spinning disk must be slower than skylake SSD")
	}
	if !(has.ExecutorMemBytes < sky.ExecutorMemBytes) {
		t.Fatal("haswell executor memory must be smaller")
	}
}

func TestWithNodes(t *testing.T) {
	c := Skylake16().WithNodes(64)
	if c.Nodes != 64 || c.TotalCores() != 64*32 {
		t.Fatalf("WithNodes: %d nodes", c.Nodes)
	}
	if Skylake16().Nodes != 16 {
		t.Fatal("WithNodes must not mutate the receiver")
	}
	if !strings.Contains(c.Name, "64") {
		t.Fatalf("name = %q", c.Name)
	}
}

func TestLocal(t *testing.T) {
	c := Local(0)
	if c.Node.Cores != 1 {
		t.Fatal("Local clamps cores to 1")
	}
	if Local(8).TotalCores() != 8 {
		t.Fatal("Local cores")
	}
}

func TestWithRacks(t *testing.T) {
	c := Skylake16().WithRacks(4)
	if c.Racks != 4 {
		t.Fatalf("Racks = %d", c.Racks)
	}
	if Skylake16().Racks != 0 {
		t.Fatal("WithRacks must not mutate the receiver")
	}
	// Contiguous blocks of 4: every node maps into range, every rack's
	// member list round-trips through RackOf.
	seen := 0
	for r := 0; r < c.Racks; r++ {
		members := c.RackNodes(r)
		if len(members) != 4 {
			t.Fatalf("rack %d has %d members", r, len(members))
		}
		for _, n := range members {
			if c.RackOf(n) != r {
				t.Fatalf("RackOf(%d) = %d, want %d", n, c.RackOf(n), r)
			}
			seen++
		}
	}
	if seen != c.Nodes {
		t.Fatalf("racks cover %d of %d nodes", seen, c.Nodes)
	}
	// Uneven split: 16 nodes over 3 racks = ceil blocks of 6, last rack short.
	u := Skylake16().WithRacks(3)
	if got := len(u.RackNodes(2)); got != 4 {
		t.Fatalf("last uneven rack has %d members, want 4", got)
	}
	if u.RackOf(15) != 2 || u.RackOf(0) != 0 {
		t.Fatalf("uneven mapping: RackOf(15)=%d RackOf(0)=%d", u.RackOf(15), u.RackOf(0))
	}
	// Without topology everything is one implicit domain.
	if Skylake16().RackOf(7) != 0 {
		t.Fatal("rackless cluster must map every node to domain 0")
	}
}

func TestString(t *testing.T) {
	s := Skylake16().String()
	if !strings.Contains(s, "skylake-16") || !strings.Contains(s, "192GB") {
		t.Fatalf("String = %q", s)
	}
}
