// Package cluster describes the hardware a distributed job runs on: node
// count, cores, clock, cache sizes, memory, local staging disks, shared
// storage and the interconnect. The two presets mirror the paper's
// experimental platforms (§V-B): a 16-node dual-socket Skylake cluster
// with SSDs and a weaker 16-node dual-socket Haswell cluster with
// spinning disks, both on gigabit Ethernet.
//
// The cost model (internal/costmodel) and the task scheduler
// (internal/sim) consume these specs; changing a preset is how the
// portability experiment (Fig. 8) moves a workload between clusters.
package cluster

import "fmt"

// DiskSpec describes a node-local staging disk (where Spark shuffle data
// is written before being served to reducers).
type DiskSpec struct {
	// ReadBW and WriteBW are sustained bandwidths in bytes/second.
	ReadBW, WriteBW float64
	// Capacity is the usable staging capacity in bytes; exceeding it
	// fails the job (the paper notes IM executions are "constrained by
	// the size of the underlying SSDs").
	Capacity int64
}

// NetworkSpec describes the cluster interconnect.
type NetworkSpec struct {
	// BandwidthBps is the per-node link bandwidth in bytes/second.
	BandwidthBps float64
	// LatencySec is the one-way message latency in seconds.
	LatencySec float64
}

// SharedStorageSpec describes the shared persistent filesystem the
// Collect-Broadcast driver stages blocks through.
type SharedStorageSpec struct {
	// ReadBW and WriteBW are aggregate bandwidths in bytes/second.
	ReadBW, WriteBW float64
}

// NodeSpec describes one compute node.
type NodeSpec struct {
	// Cores is the number of physical cores (across sockets).
	Cores int
	// ClockGHz is the nominal core clock.
	ClockGHz float64
	// L2Bytes is the per-core L2 cache size.
	L2Bytes int64
	// L3Bytes is the shared last-level cache size (across sockets).
	L3Bytes int64
	// RAMBytes is the installed memory.
	RAMBytes int64
	// MemBWBps is the sustained DRAM bandwidth in bytes/second.
	MemBWBps float64
	// Disk is the node-local staging disk.
	Disk DiskSpec
}

// Cluster is a homogeneous cluster of Nodes × Node machines.
type Cluster struct {
	// Name labels the cluster in reports.
	Name string
	// Nodes is the number of compute nodes (= executors; the paper runs
	// one executor per node).
	Nodes int
	// Node is the per-node hardware description.
	Node NodeSpec
	// Net is the interconnect.
	Net NetworkSpec
	// Shared is the shared persistent storage used by the CB driver.
	Shared SharedStorageSpec
	// ExecutorMemBytes is the per-executor memory setting
	// (spark.executor.memory); the RDD working set must fit in it.
	ExecutorMemBytes int64
	// Racks is the number of fault domains the nodes are spread across.
	// Nodes map to racks in contiguous blocks (nodes 0..k-1 in rack 0,
	// and so on); a rack is the unit of correlated failure (shared ToR
	// switch / PDU). 0 or 1 means a single domain — rack-awareness off.
	Racks int
}

// RackOf returns the fault domain of node (contiguous-block mapping).
// With Racks ≤ 1 every node lives in domain 0.
func (c *Cluster) RackOf(node int) int {
	if c.Racks <= 1 || c.Nodes <= 0 {
		return 0
	}
	per := (c.Nodes + c.Racks - 1) / c.Racks
	r := node / per
	if r >= c.Racks {
		r = c.Racks - 1
	}
	if r < 0 {
		r = 0
	}
	return r
}

// RackNodes returns the node IDs living in rack r (empty when out of
// range).
func (c *Cluster) RackNodes(r int) []int {
	var out []int
	for n := 0; n < c.Nodes; n++ {
		if c.RackOf(n) == r {
			out = append(out, n)
		}
	}
	return out
}

// TotalCores returns the number of physical cores in the cluster.
func (c *Cluster) TotalCores() int { return c.Nodes * c.Node.Cores }

// DefaultPartitions returns the paper's partition-count guideline:
// 2× the total number of cores (§V-B).
func (c *Cluster) DefaultPartitions() int { return 2 * c.TotalCores() }

// String summarizes the cluster.
func (c *Cluster) String() string {
	return fmt.Sprintf("%s: %d nodes × %d cores @%.2fGHz, %dGB RAM, %dGB executor mem",
		c.Name, c.Nodes, c.Node.Cores, c.Node.ClockGHz,
		c.Node.RAMBytes>>30, c.ExecutorMemBytes>>30)
}

// WithNodes returns a copy of the cluster scaled to n nodes (used by the
// weak-scaling experiment, Fig. 9).
func (c *Cluster) WithNodes(n int) *Cluster {
	out := *c
	out.Nodes = n
	out.Name = fmt.Sprintf("%s[%d nodes]", c.Name, n)
	return &out
}

// WithRacks returns a copy of the cluster spread across r fault domains.
// Rack-awareness is opt-in so the presets' modelled schedules stay
// byte-stable for existing runs.
func (c *Cluster) WithRacks(r int) *Cluster {
	out := *c
	out.Racks = r
	return &out
}

const (
	kb = int64(1) << 10
	mb = int64(1) << 20
	gb = int64(1) << 30
	tb = int64(1) << 40
)

// Skylake16 is the paper's primary cluster: 16 nodes, each with two
// 16-core Intel Xeon Gold 6130 (Skylake) 2.10 GHz processors, 1 MB L2 per
// core, 22 MB L3 per socket, 192 GB RAM and a 1 TB SSD.
// Executor/driver memory was set to 160 GB.
//
// Bandwidths are *effective* values calibrated against the paper's
// runtimes: the per-iteration shuffle volumes of the IM driver at the
// reported times imply far more than nominal gigabit Ethernet (shuffle
// compression, fetch/compute overlap, and the testbed — SeaWulf — also
// offers InfiniBand), and local-disk figures fold in the page cache.
// See EXPERIMENTS.md "Calibration".
func Skylake16() *Cluster {
	return &Cluster{
		Name:  "skylake-16",
		Nodes: 16,
		Node: NodeSpec{
			Cores:    32,
			ClockGHz: 2.10,
			L2Bytes:  1 * mb,
			L3Bytes:  2 * 22 * mb,
			RAMBytes: 192 * gb,
			MemBWBps: 100e9,
			Disk: DiskSpec{
				ReadBW:   1.8e9,
				WriteBW:  1.6e9,
				Capacity: 1 * tb,
			},
		},
		Net:              NetworkSpec{BandwidthBps: 1.2e9, LatencySec: 100e-6},
		Shared:           SharedStorageSpec{ReadBW: 1.8e9, WriteBW: 1.5e9},
		ExecutorMemBytes: 160 * gb,
	}
}

// Haswell16 is the paper's portability cluster (Fig. 8): 16 nodes, each
// with dual 10-core Intel Xeon E5-2650v3 (Haswell) 2.30 GHz processors,
// 256 KB L2 per core, 25 MB L3 per socket, 64 GB RAM and a 7500 rpm SATA
// spinning disk. Executor/driver memory 60 GB. Bandwidths are effective
// values (see Skylake16); the spinning disks are the dominant handicap.
func Haswell16() *Cluster {
	return &Cluster{
		Name:  "haswell-16",
		Nodes: 16,
		Node: NodeSpec{
			Cores:    20,
			ClockGHz: 2.30,
			L2Bytes:  256 * kb,
			L3Bytes:  2 * 25 * mb,
			RAMBytes: 64 * gb,
			MemBWBps: 60e9,
			Disk: DiskSpec{
				ReadBW:   110e6,
				WriteBW:  100e6,
				Capacity: 1 * tb,
			},
		},
		Net:              NetworkSpec{BandwidthBps: 1.0e9, LatencySec: 120e-6},
		Shared:           SharedStorageSpec{ReadBW: 1.5e9, WriteBW: 1.2e9},
		ExecutorMemBytes: 60 * gb,
	}
}

// LocalN returns a small multi-node development "cluster": Local's
// per-node hardware replicated across nodes. Fault-injection tests use
// it — executor loss, blacklisting and shuffle re-fetch need more than
// one executor to be observable.
func LocalN(nodes, cores int) *Cluster {
	if nodes < 1 {
		nodes = 1
	}
	c := Local(cores)
	c.Nodes = nodes
	c.Name = fmt.Sprintf("local-%d", nodes)
	return c
}

// Local returns a tiny single-node "cluster" used by tests and real-mode
// runs on a development machine.
func Local(cores int) *Cluster {
	if cores < 1 {
		cores = 1
	}
	return &Cluster{
		Name:  "local",
		Nodes: 1,
		Node: NodeSpec{
			Cores:    cores,
			ClockGHz: 2.5,
			L2Bytes:  1 * mb,
			L3Bytes:  16 * mb,
			RAMBytes: 16 * gb,
			MemBWBps: 50e9,
			Disk:     DiskSpec{ReadBW: 1e9, WriteBW: 1e9, Capacity: 100 * gb},
		},
		Net:              NetworkSpec{BandwidthBps: 10e9, LatencySec: 5e-6},
		Shared:           SharedStorageSpec{ReadBW: 1e9, WriteBW: 1e9},
		ExecutorMemBytes: 8 * gb,
	}
}
