// Package costmodel prices the work a task performs on a given cluster:
// kernel compute time (including cache behaviour and intra-kernel thread
// scaling), network transfers, local-disk shuffle staging, shared-storage
// traffic and Spark scheduling overheads.
//
// The model is analytic and deliberately simple — a handful of calibrated
// constants per effect — because the reproduction targets the *shape* of
// the paper's results (who wins, crossover points, the OMP×cores ridge),
// not bit-exact wall clock. Every constant lives in Params and can be
// overridden; DefaultParams documents the calibration.
//
// The modelled effects, and the paper observations they reproduce:
//
//   - Iterative kernels pay a growing cache penalty once a tile no longer
//     fits in L2, and a DRAM-bandwidth penalty when many concurrent tasks
//     stream tiles together (§V-C: "for small block sizes performance of
//     iterative and recursive kernels are similar ... for larger block
//     sizes the recursive kernels significantly outperform").
//   - Recursive kernels are cache-oblivious: a flat, small penalty.
//   - Recursive kernels scale with OMP_NUM_THREADS with imperfect
//     efficiency, capped by the fan-out-limited parallelism of the kernel
//     kind (r_shared controls exploitable parallelism; Tables I–II).
//   - Every byte shuffled is written to the local staging disk and read
//     back (IM driver); every byte collected/broadcast crosses the
//     driver's link and the shared filesystem (CB driver).
package costmodel

import (
	"math"
	"sync"

	"dpspark/internal/cluster"
	"dpspark/internal/kernels"
	"dpspark/internal/semiring"
	"dpspark/internal/simtime"
)

// KernelConfig describes the kernel implementation a task runs — the
// paper's tunables.
type KernelConfig struct {
	// Recursive selects the r-way R-DP kernels; false means iterative.
	Recursive bool
	// RShared is the recursive fan-out (r_shared); ignored for iterative.
	RShared int
	// Base is the recursive base-case size; ignored for iterative.
	Base int
	// Threads is the intra-kernel worker budget: OMP_NUM_THREADS for
	// recursive kernels, KernelThreads (row-band workers) for iterative
	// ones. ≤1 means single-threaded invocations.
	Threads int
	// CoTasks is the expected number of tasks co-resident on a node
	// (executor-cores), which determines aggregate cache/DRAM pressure.
	CoTasks int
}

// EffectiveThreads returns the threads one task's kernel invocations may
// occupy.
func (kc KernelConfig) EffectiveThreads() int {
	if kc.Threads < 1 {
		return 1
	}
	return kc.Threads
}

// Params holds the calibration constants.
type Params struct {
	// IterUpdateNs is the iterative kernel's cost per element update with
	// operands resident in L2, in nanoseconds at 1 GHz (scaled by clock).
	IterUpdateNs float64
	// RecUpdateNs is the recursive kernel's per-update leaf cost
	// (slightly above iterative: recursion bookkeeping), same scaling.
	RecUpdateNs float64
	// IterBytesPerUpdate is the DRAM traffic an iterative update incurs
	// once tiles spill the caches (streaming the output tile each pivot).
	IterBytesPerUpdate float64
	// RecBytesPerUpdate is the recursive kernel's DRAM traffic per update
	// (tiny: cache-oblivious reuse).
	RecBytesPerUpdate float64
	// L3Penalty multiplies iterative update cost when the task working
	// set exceeds its L2 share but the node aggregate still fits L3.
	L3Penalty float64
	// L3Slope grows the iterative penalty per doubling of the node's
	// aggregate working set beyond L3 (progressively DRAM-bound).
	L3Slope float64
	// L3SlopeCap bounds the aggregate-pressure term: once fully
	// DRAM-resident, more co-running tasks change nothing.
	L3SlopeCap float64
	// DRAMLogGrowth adds penalty per doubling of a single task's working
	// set beyond L3 (TLB and row-buffer effects on very large tiles).
	DRAMLogGrowth float64
	// RecPenalty is the recursive kernels' flat cache factor.
	RecPenalty float64
	// ThreadOverhead is the per-extra-thread efficiency loss σ in the
	// kernel speedup e(T) = T / (1 + σ·(T−1)).
	ThreadOverhead float64
	// RecForkNs is the fork/join barrier cost per OMP thread per par_for
	// barrier of Fig. 4's recursion (barriers ≈ 2·leaves/r_shared); this
	// is part of what makes OMP_NUM_THREADS=32 regress in Tables I–II.
	RecForkNs float64
	// DivPenaltyIter multiplies iterative update cost for rules whose
	// update divides by the pivot (GE): the Numba loop kernels pay a
	// full FP division per update, where the C -Ofast recursive kernels
	// get reciprocal transforms and vectorization.
	DivPenaltyIter float64
	// DivPenaltyRec is the milder division penalty of the recursive
	// kernels' base cases.
	DivPenaltyRec float64
	// TaskOverheadMs is the per-task launch/serialization cost (pySpark
	// task dispatch).
	TaskOverheadMs float64
	// StageOverheadMs is the per-stage scheduler delay (DAG scheduling,
	// barrier).
	StageOverheadMs float64
	// JobOverheadMs is the per-action driver cost (py4j round trip, job
	// submission); the CB driver pays it three times per iteration.
	JobOverheadMs float64
	// SerializeBWBps is the per-core (de)serialization throughput for
	// shuffled and collected records (pySpark pickling of NumPy tiles).
	SerializeBWBps float64
	// DriverIterMs is per top-level loop iteration driver work
	// (filter/union bookkeeping in the Python driver).
	DriverIterMs float64
}

// DefaultParams returns the calibration used for the paper reproduction.
// Constants were fitted against the anchor numbers of §V-C (FW-APSP IM:
// iterative 651 s at block 256, 16-way recursive 302 s at block 1024;
// GE CB: iterative 1032 s at block 512, 4-way recursive 204 s at block
// 2048; iterative block-4096 runs over 10000 s) — see EXPERIMENTS.md.
func DefaultParams() Params {
	return Params{
		IterUpdateNs:       2.0,
		RecUpdateNs:        2.4,
		IterBytesPerUpdate: 10.0,
		RecBytesPerUpdate:  0.3,
		L3Penalty:          1.5,
		L3Slope:            1.7,
		L3SlopeCap:         3.5,
		DRAMLogGrowth:      0.4,
		RecPenalty:         1.12,
		ThreadOverhead:     0.06,
		RecForkNs:          500,
		DivPenaltyIter:     3.0,
		DivPenaltyRec:      1.3,
		TaskOverheadMs:     4,
		StageOverheadMs:    250,
		JobOverheadMs:      400,
		SerializeBWBps:     5e8,
		DriverIterMs:       30,
	}
}

// Model prices work on a specific cluster.
type Model struct {
	C *cluster.Cluster
	P Params

	mu        sync.Mutex
	workCache map[workKey]float64
}

type workKey struct {
	rule string
	kind semiring.Kind
	n    int
}

// New returns a model for the cluster with default calibration.
func New(c *cluster.Cluster) *Model {
	return &Model{C: c, P: DefaultParams(), workCache: make(map[workKey]float64)}
}

// work memoizes kernels.Updates — kernel pricing is on the engine's per-
// record hot path and the update count depends only on (rule, kind, n).
func (m *Model) work(rule semiring.Rule, kind semiring.Kind, n int) float64 {
	key := workKey{rule: rule.Name(), kind: kind, n: n}
	m.mu.Lock()
	if w, ok := m.workCache[key]; ok {
		m.mu.Unlock()
		return w
	}
	m.mu.Unlock()
	w := float64(kernels.Updates(rule, kind, n))
	m.mu.Lock()
	if m.workCache == nil {
		m.workCache = make(map[workKey]float64)
	}
	m.workCache[key] = w
	m.mu.Unlock()
	return w
}

// clockScale converts nominal nanosecond constants (quoted at 1 GHz) to
// this cluster's clock.
func (m *Model) clockScale() float64 { return 1.0 / m.C.Node.ClockGHz }

// iterPenalty returns the cache multiplier for an iterative kernel on a
// b×b tile with coTasks tasks sharing the node and streams concurrently
// streaming update loops (coTasks × the per-task occupancy): cache
// pressure follows the number of distinct working sets, bandwidth demand
// the number of active update streams.
func (m *Model) iterPenalty(b, coTasks, streams int) float64 {
	if coTasks < 1 {
		coTasks = 1
	}
	if streams < coTasks {
		streams = coTasks
	}
	ws := 3 * int64(b) * int64(b) * 8 // x, u, v operand tiles
	node := m.C.Node
	if ws <= node.L2Bytes {
		return 1
	}
	// The node's aggregate working set shifts the kernels from L3- to
	// DRAM-resident: a smooth log penalty fits the paper's "similar at
	// 512, significantly worse at 1024 and beyond" observation.
	p := m.P.L3Penalty
	agg := ws * int64(coTasks)
	if over := float64(agg) / float64(node.L3Bytes); over > 1 {
		p += math.Min(m.P.L3Slope*math.Log2(over), m.P.L3SlopeCap)
	}
	// Very large tiles additionally pay TLB/row-buffer costs.
	if over := float64(ws) / float64(node.L3Bytes); over > 1 {
		p += m.P.DRAMLogGrowth * math.Log2(over)
	}
	// Bandwidth dilation when aggregate streaming demand exceeds DRAM.
	demand := float64(streams) * m.P.IterBytesPerUpdate /
		(m.P.IterUpdateNs * m.clockScale() * 1e-9)
	if dil := demand / node.MemBWBps; dil > p {
		p = dil
	}
	return p
}

// kernelParallelism is the exploitable parallelism of one recursive
// kernel invocation. The OpenMP kernels parallelize one par_for level per
// recursion step without nested regions, so the usable width is of order
// r_shared: the full fan-out for D, one less for the panel kernels whose
// first stage is pivot-serialized, and ~2/3 of that for A, whose diagonal
// chain is sequential. (Fitted against the cores=1 columns of Tables
// I–II, which isolate intra-kernel scaling.)
func kernelParallelism(kind semiring.Kind, rShared int) float64 {
	r := float64(rShared)
	switch kind {
	case semiring.KindA:
		return math.Max(1, 2*(r-1)/3)
	case semiring.KindB, semiring.KindC:
		return math.Max(1, r-1)
	default: // KindD
		return r
	}
}

// iterParallelism is the exploitable parallelism of one iterative kernel
// invocation under the row-band split: kind D is unaliased and splits
// into per-thread bands (parallelism bounded only by the row count, far
// above any realistic thread budget), while A, B and C are true in-place
// DPs that stay on the ordered serial loops whatever the pool width.
func iterParallelism(kind semiring.Kind) float64 {
	if kind == semiring.KindD {
		return math.MaxFloat64
	}
	return 1
}

// threadSpeedup returns the effective speedup of T threads on one kernel
// invocation of the given kind.
func (m *Model) threadSpeedup(kind semiring.Kind, kc KernelConfig) float64 {
	t := float64(kc.EffectiveThreads())
	if t <= 1 {
		return 1
	}
	e := t / (1 + m.P.ThreadOverhead*(t-1))
	if kc.Recursive {
		return math.Min(e, kernelParallelism(kind, kc.RShared))
	}
	return math.Min(e, iterParallelism(kind))
}

// parallelismOf returns the config's exploitable parallelism for a kind.
func parallelismOf(kind semiring.Kind, kc KernelConfig) float64 {
	if kc.Recursive {
		return kernelParallelism(kind, kc.RShared)
	}
	return iterParallelism(kind)
}

// Occupancy returns the worker threads a kernel invocation keeps busy:
// threads beyond the kernel's exploitable parallelism sleep at the
// par_for barriers (passive OMP wait) or are never spawned (iterative
// band split) and do not contend for cores.
func (m *Model) Occupancy(kind semiring.Kind, kc KernelConfig) int {
	t := kc.EffectiveThreads()
	if p := int(math.Ceil(math.Min(float64(t), parallelismOf(kind, kc)))); t > p {
		return p
	}
	return t
}

// IdleThreads returns the threads a kernel invocation reserves but cannot
// use. Recursive OMP-style teams keep their full width alive across the
// invocation (idle members spin or sleep at barriers but still belong to
// the task); the iterative band split simply never wakes pool workers it
// cannot feed, so its unused budget costs nothing.
func (m *Model) IdleThreads(kind semiring.Kind, kc KernelConfig) int {
	if !kc.Recursive {
		return 0
	}
	return kc.EffectiveThreads() - m.Occupancy(kind, kc)
}

// KernelTime prices one kernel invocation of the given kind on a b×b tile.
func (m *Model) KernelTime(rule semiring.Rule, kind semiring.Kind, b int, kc KernelConfig) simtime.Duration {
	work := m.work(rule, kind, b)
	scale := m.clockScale()
	if !kc.Recursive {
		occ := m.Occupancy(kind, kc)
		s := m.threadSpeedup(kind, kc)
		ns := work * m.P.IterUpdateNs * scale *
			m.iterPenalty(b, kc.CoTasks, kc.CoTasks*occ) / s
		if rule.UsesPivot() {
			ns *= m.P.DivPenaltyIter
		}
		// One band fork/join per invocation when the split engages.
		if occ > 1 {
			ns += m.P.RecForkNs * float64(occ)
		}
		return simtime.Duration(ns * 1e-9)
	}
	base := kc.Base
	if base < 1 {
		base = 64
	}
	s := m.threadSpeedup(kind, kc)
	computeNs := work * m.P.RecUpdateNs * scale * m.P.RecPenalty / s
	if rule.UsesPivot() {
		computeNs *= m.P.DivPenaltyRec
	}
	// DRAM dilation for recursive kernels (rarely binds: tiny traffic).
	demand := float64(kc.CoTasks*m.Occupancy(kind, kc)) * m.P.RecBytesPerUpdate /
		(m.P.RecUpdateNs * scale * 1e-9)
	if dil := demand / m.C.Node.MemBWBps; dil > 1 {
		computeNs *= dil
	}
	// Barrier crossings ≈ 2 par_for joins per sub-iteration across all
	// internal recursion nodes ≈ 2·leaves/r_shared; each costs RecForkNs
	// per participating thread.
	leaves := work / float64(int64(base)*int64(base)*int64(base))
	barriers := 2 * leaves / float64(kc.RShared)
	overheadNs := barriers * m.P.RecForkNs * float64(kc.EffectiveThreads())
	return simtime.Duration((computeNs + overheadNs) * 1e-9)
}

// NetTime prices moving bytes across one node's network link.
func (m *Model) NetTime(bytes int64) simtime.Duration {
	if bytes <= 0 {
		return 0
	}
	return simtime.Duration(m.C.Net.LatencySec + float64(bytes)/m.C.Net.BandwidthBps)
}

// DiskWriteTime prices staging bytes on the node-local disk.
func (m *Model) DiskWriteTime(bytes int64) simtime.Duration {
	if bytes <= 0 {
		return 0
	}
	return simtime.Duration(float64(bytes) / m.C.Node.Disk.WriteBW)
}

// DiskReadTime prices reading staged bytes from the node-local disk.
func (m *Model) DiskReadTime(bytes int64) simtime.Duration {
	if bytes <= 0 {
		return 0
	}
	return simtime.Duration(float64(bytes) / m.C.Node.Disk.ReadBW)
}

// SharedWriteTime prices writing bytes to the shared filesystem.
func (m *Model) SharedWriteTime(bytes int64) simtime.Duration {
	if bytes <= 0 {
		return 0
	}
	return simtime.Duration(float64(bytes) / m.C.Shared.WriteBW)
}

// SharedReadTime prices reading bytes from the shared filesystem.
func (m *Model) SharedReadTime(bytes int64) simtime.Duration {
	if bytes <= 0 {
		return 0
	}
	return simtime.Duration(float64(bytes) / m.C.Shared.ReadBW)
}

// JobOverhead is the fixed per-action cost.
func (m *Model) JobOverhead() simtime.Duration {
	return simtime.Duration(m.P.JobOverheadMs) * simtime.Millisecond
}

// SerializeTime prices pickling/unpickling bytes on one core.
func (m *Model) SerializeTime(bytes int64) simtime.Duration {
	if bytes <= 0 {
		return 0
	}
	return simtime.Duration(float64(bytes) / m.P.SerializeBWBps)
}

// TaskOverhead is the fixed per-task cost.
func (m *Model) TaskOverhead() simtime.Duration {
	return simtime.Duration(m.P.TaskOverheadMs) * simtime.Millisecond
}

// StageOverhead is the fixed per-stage cost.
func (m *Model) StageOverhead() simtime.Duration {
	return simtime.Duration(m.P.StageOverheadMs) * simtime.Millisecond
}

// DriverIterOverhead is the fixed per-top-level-iteration driver cost.
func (m *Model) DriverIterOverhead() simtime.Duration {
	return simtime.Duration(m.P.DriverIterMs) * simtime.Millisecond
}
