package costmodel

import (
	"testing"

	"dpspark/internal/cluster"
	"dpspark/internal/semiring"
	"dpspark/internal/simtime"
)

func model() *Model { return New(cluster.Skylake16()) }

func iterCfg(coTasks int) KernelConfig {
	return KernelConfig{Recursive: false, CoTasks: coTasks}
}

func recCfg(rShared, threads, coTasks int) KernelConfig {
	return KernelConfig{Recursive: true, RShared: rShared, Base: 64, Threads: threads, CoTasks: coTasks}
}

func TestEffectiveThreads(t *testing.T) {
	if iterCfg(1).EffectiveThreads() != 1 {
		t.Fatal("iterative must be single-threaded")
	}
	if recCfg(4, 8, 1).EffectiveThreads() != 8 {
		t.Fatal("recursive threads")
	}
	if (KernelConfig{Recursive: true, Threads: 0}).EffectiveThreads() != 1 {
		t.Fatal("clamp")
	}
}

// TestIterativeCacheCliff: the signature observation of Fig. 6 — iterative
// kernels are competitive while tiles fit in cache and degrade sharply
// beyond, while recursive kernels stay near-flat per update.
func TestIterativeCacheCliff(t *testing.T) {
	m := model()
	rule := semiring.NewFloydWarshall()
	perUpdate := func(b int, kc KernelConfig) float64 {
		d := m.KernelTime(rule, semiring.KindD, b, kc)
		return d.Seconds() / float64(b) / float64(b) / float64(b)
	}
	itSmall := perUpdate(128, iterCfg(32))
	itBig := perUpdate(2048, iterCfg(32))
	if itBig < 2*itSmall {
		t.Fatalf("iterative per-update cost must cliff: small=%g big=%g", itSmall, itBig)
	}
	recSmall := perUpdate(128, recCfg(4, 1, 32))
	recBig := perUpdate(2048, recCfg(4, 1, 32))
	if recBig > 1.6*recSmall {
		t.Fatalf("recursive per-update cost must stay near-flat: small=%g big=%g", recSmall, recBig)
	}
	// And at large tiles parallel recursive beats iterative clearly.
	if m.KernelTime(rule, semiring.KindD, 2048, recCfg(4, 8, 4)) >=
		m.KernelTime(rule, semiring.KindD, 2048, iterCfg(32)) {
		t.Fatal("parallel recursive must beat iterative on large tiles")
	}
}

func TestThreadSpeedupMonotoneAndCapped(t *testing.T) {
	m := model()
	rule := semiring.NewGaussian()
	prev := simtime.Duration(0)
	for i, threads := range []int{1, 2, 4, 8, 16} {
		d := m.KernelTime(rule, semiring.KindD, 1024, recCfg(8, threads, 1))
		if i > 0 && d >= prev {
			t.Fatalf("threads=%d did not speed up: %v >= %v", threads, d, prev)
		}
		prev = d
	}
	// With r_shared=2 the A kernel's exploitable parallelism is tiny:
	// many threads must not help much.
	d8 := m.KernelTime(rule, semiring.KindA, 1024, recCfg(2, 8, 1))
	d32 := m.KernelTime(rule, semiring.KindA, 1024, recCfg(2, 32, 1))
	if d32 < simtime.Duration(0.95*float64(d8)) {
		t.Fatalf("r_shared=2 A kernel should be parallelism-capped: %v vs %v", d8, d32)
	}
}

func TestKernelParallelismShape(t *testing.T) {
	for _, r := range []int{2, 4, 16} {
		pa := kernelParallelism(semiring.KindA, r)
		pb := kernelParallelism(semiring.KindB, r)
		pd := kernelParallelism(semiring.KindD, r)
		if !(pa <= pb && pb <= pd) {
			t.Fatalf("r=%d: parallelism must grow A≤B≤D: %g %g %g", r, pa, pb, pd)
		}
		if pd != float64(r) {
			t.Fatalf("D parallelism = %g, want r_shared (single par_for level)", pd)
		}
	}
	if kernelParallelism(semiring.KindA, 2) < 1 {
		t.Fatal("parallelism must be ≥ 1")
	}
}

func TestOccupancy(t *testing.T) {
	m := model()
	if m.Occupancy(semiring.KindD, iterCfg(8)) != 1 {
		t.Fatal("iterative occupancy must be 1")
	}
	// Threads beyond the kernel's parallelism sleep: occupancy caps at P.
	if got := m.Occupancy(semiring.KindD, recCfg(4, 32, 1)); got != 4 {
		t.Fatalf("rec4 D occupancy at omp32 = %d, want 4", got)
	}
	if got := m.Occupancy(semiring.KindD, recCfg(16, 8, 1)); got != 8 {
		t.Fatalf("rec16 D occupancy at omp8 = %d, want 8", got)
	}
}

func TestDivisionPenalty(t *testing.T) {
	// GE updates divide by the pivot: both kernel families pay more per
	// update than FW, the iterative (Numba) kernels the most.
	m := model()
	b := 64 // in-cache: isolates the per-update constant
	fwIter := m.KernelTime(semiring.NewFloydWarshall(), semiring.KindD, b, iterCfg(1))
	geIter := m.KernelTime(semiring.NewGaussian(), semiring.KindD, b, iterCfg(1))
	if ratio := float64(geIter) / float64(fwIter); ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("GE iterative division penalty = %.2f, want ≈3", ratio)
	}
	fwRec := m.KernelTime(semiring.NewFloydWarshall(), semiring.KindD, b, recCfg(4, 1, 1))
	geRec := m.KernelTime(semiring.NewGaussian(), semiring.KindD, b, recCfg(4, 1, 1))
	itRatio := float64(geIter) / float64(fwIter)
	recRatio := float64(geRec) / float64(fwRec)
	if recRatio >= itRatio {
		t.Fatalf("recursive kernels must pay a milder division penalty: %.2f vs %.2f", recRatio, itRatio)
	}
}

func TestGEKernelWorkOrdering(t *testing.T) {
	// GE kind A does ~n³/3 work, B/C ~n³/2, D n³ — times must reflect it.
	m := model()
	rule := semiring.NewGaussian()
	a := m.KernelTime(rule, semiring.KindA, 512, iterCfg(1))
	b := m.KernelTime(rule, semiring.KindB, 512, iterCfg(1))
	d := m.KernelTime(rule, semiring.KindD, 512, iterCfg(1))
	if !(a < b && b < d) {
		t.Fatalf("GE kernel times must order A<B<D: %v %v %v", a, b, d)
	}
}

func TestTransferPricing(t *testing.T) {
	m := model()
	if m.NetTime(0) != 0 || m.DiskWriteTime(0) != 0 || m.SharedReadTime(0) != 0 {
		t.Fatal("zero bytes must cost nothing")
	}
	gb := int64(1) << 30
	net := m.NetTime(gb).Seconds()
	// Effective interconnect bandwidth is calibrated ≈ 1.2 GB/s (see the
	// cluster preset docs): 1 GiB ≈ 0.9 s.
	if net < 0.5 || net > 2 {
		t.Fatalf("1GiB over the effective interconnect = %vs", net)
	}
	if m.DiskWriteTime(gb) <= m.DiskReadTime(gb) {
		t.Fatal("SSD write must be slower than read in the preset")
	}
	haswell := New(cluster.Haswell16())
	if haswell.DiskReadTime(gb) <= m.DiskReadTime(gb) {
		t.Fatal("spinning disk must be slower than SSD")
	}
}

func TestOverheads(t *testing.T) {
	m := model()
	if m.TaskOverhead() <= 0 || m.StageOverhead() <= 0 || m.DriverIterOverhead() <= 0 {
		t.Fatal("overheads must be positive")
	}
	if m.StageOverhead() <= m.TaskOverhead() {
		t.Fatal("stage overhead should dominate task overhead")
	}
}

func TestClockScalePortability(t *testing.T) {
	// Same kernel must be cheaper per-update on the faster-clocked
	// cluster, all else equal.
	sky := New(cluster.Skylake16())
	has := New(cluster.Haswell16())
	rule := semiring.NewFloydWarshall()
	b := 64 // 3×64²×8 = 96KB fits both clusters' L2 at CoTasks=1
	ds := sky.KernelTime(rule, semiring.KindD, b, iterCfg(1))
	dh := has.KernelTime(rule, semiring.KindD, b, iterCfg(1))
	if dh >= ds {
		t.Fatalf("haswell (2.3GHz) should beat skylake (2.1GHz) in-cache: %v vs %v", dh, ds)
	}
}

func TestHaswellSmallerL2Penalizes(t *testing.T) {
	// A 256-tile task set fits Skylake's L2 budget regime better than
	// Haswell's 256KB L2 — the root of Fig. 8's portability gap.
	sky := New(cluster.Skylake16())
	has := New(cluster.Haswell16())
	if sky.iterPenalty(128, 1, 1) != 1 {
		t.Fatal("128 tile must be L2-resident on skylake")
	}
	if has.iterPenalty(128, 1, 1) == 1 {
		t.Fatal("3×128²×8 = 384KB must exceed haswell's 256KB L2")
	}
}

func iterThreadedCfg(threads, coTasks int) KernelConfig {
	return KernelConfig{Recursive: false, Threads: threads, CoTasks: coTasks}
}

// TestIterativeThreadScaling: with the row-band split, iterative kind-D
// kernels scale with the thread budget (sub-linearly, σ overhead) while
// the in-place kinds A/B/C stay serial at exactly the single-thread price.
func TestIterativeThreadScaling(t *testing.T) {
	m := model()
	rule := semiring.NewFloydWarshall()
	b := 512
	serial := m.KernelTime(rule, semiring.KindD, b, iterCfg(1))
	par := m.KernelTime(rule, semiring.KindD, b, iterThreadedCfg(4, 1))
	if par >= serial {
		t.Fatalf("4 band threads must beat serial on kind D: %v vs %v", par, serial)
	}
	if speedup := serial.Seconds() / par.Seconds(); speedup >= 4 {
		t.Fatalf("thread speedup must be sub-linear, got %.2f×", speedup)
	}
	for _, kind := range []semiring.Kind{semiring.KindA, semiring.KindB, semiring.KindC} {
		s1 := m.KernelTime(rule, kind, b, iterCfg(1))
		s4 := m.KernelTime(rule, kind, b, iterThreadedCfg(4, 1))
		if s1 != s4 {
			t.Fatalf("kind %v must be thread-insensitive for iterative kernels: %v vs %v", kind, s1, s4)
		}
	}
	if got := m.Occupancy(semiring.KindD, iterThreadedCfg(4, 1)); got != 4 {
		t.Fatalf("iterative D occupancy = %d, want 4", got)
	}
	if got := m.Occupancy(semiring.KindA, iterThreadedCfg(4, 1)); got != 1 {
		t.Fatalf("iterative A occupancy = %d, want 1", got)
	}
}

// TestIdleThreads: recursive OMP teams reserve their full width (unused
// members are charged as idle); the iterative band split never wakes
// workers it cannot feed.
func TestIdleThreads(t *testing.T) {
	m := model()
	if got := m.IdleThreads(semiring.KindA, recCfg(2, 8, 1)); got <= 0 {
		t.Fatalf("recursive A with 8 threads on r=2 must idle threads, got %d", got)
	}
	if got := m.IdleThreads(semiring.KindA, iterThreadedCfg(8, 1)); got != 0 {
		t.Fatalf("iterative idle threads = %d, want 0", got)
	}
	if got := m.IdleThreads(semiring.KindD, iterThreadedCfg(8, 1)); got != 0 {
		t.Fatalf("iterative D idle threads = %d, want 0", got)
	}
}

// TestIterPenaltyStreams: bandwidth dilation follows the number of active
// update streams (coTasks × occupancy), so a cores×threads split with the
// same total stream count prices the same demand, and more streams never
// price below fewer.
func TestIterPenaltyStreams(t *testing.T) {
	m := model()
	b := 1024
	if p44, p16 := m.iterPenalty(b, 4, 16), m.iterPenalty(b, 16, 16); p44 > p16 {
		t.Fatalf("4 tasks × 4 threads should not exceed 16 tasks × 1 thread in bandwidth demand: %v vs %v", p44, p16)
	}
	if lo, hi := m.iterPenalty(b, 4, 4), m.iterPenalty(b, 4, 16); hi < lo {
		t.Fatalf("more streams must not lower the penalty: %v -> %v", lo, hi)
	}
}
