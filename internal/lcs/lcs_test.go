package lcs

import (
	"math/rand"
	"testing"

	"dpspark/internal/cluster"
	"dpspark/internal/rdd"
)

func newCtx() *rdd.Context {
	return rdd.NewContext(rdd.Conf{Cluster: cluster.Local(4)})
}

// reference is the classic O(nm) LCS.
func reference(a, b []byte) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			switch {
			case a[i-1] == b[j-1]:
				cur[j] = prev[j-1] + 1
			case prev[j] >= cur[j-1]:
				cur[j] = prev[j]
			default:
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
		for k := range cur {
			cur[k] = 0
		}
	}
	return prev[len(b)]
}

func TestKnownLCS(t *testing.T) {
	res, err := Solve(newCtx(), []byte("ABCBDAB"), []byte("BDCABA"), Config{BlockSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Length != 4 { // BDAB / BCAB / BCBA
		t.Fatalf("LCS = %d, want 4", res.Length)
	}
	if res.Waves != 3+2-1 {
		t.Fatalf("waves = %d", res.Waves)
	}
	if res.Time <= 0 {
		t.Fatal("no modelled time")
	}
}

func TestMatchesReferenceAcrossShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	alphabet := []byte("ACGT")
	randSeq := func(n int) []byte {
		out := make([]byte, n)
		for i := range out {
			out[i] = alphabet[rng.Intn(len(alphabet))]
		}
		return out
	}
	for trial := 0; trial < 8; trial++ {
		a := randSeq(20 + rng.Intn(60))
		b := randSeq(20 + rng.Intn(60))
		want := reference(a, b)
		for _, bs := range []int{7, 16, 64} {
			res, err := Solve(newCtx(), a, b, Config{BlockSize: bs})
			if err != nil {
				t.Fatal(err)
			}
			if res.Length != want {
				t.Fatalf("trial %d bs=%d: LCS = %d, want %d (|a|=%d |b|=%d)",
					trial, bs, res.Length, want, len(a), len(b))
			}
		}
	}
}

func TestIdenticalAndDisjoint(t *testing.T) {
	s := []byte("HELLOWORLD")
	res, err := Solve(newCtx(), s, s, Config{BlockSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Length != len(s) {
		t.Fatalf("self-LCS = %d", res.Length)
	}
	res, err = Solve(newCtx(), []byte("AAAA"), []byte("BBBB"), Config{BlockSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Length != 0 {
		t.Fatalf("disjoint LCS = %d", res.Length)
	}
}

func TestEmptyInputs(t *testing.T) {
	res, err := Solve(newCtx(), nil, []byte("AB"), Config{BlockSize: 2})
	if err != nil || res.Length != 0 {
		t.Fatalf("empty LCS = %+v, %v", res, err)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Solve(newCtx(), []byte("A"), []byte("B"), Config{}); err == nil {
		t.Fatal("expected BlockSize error")
	}
}

// TestWavefrontMovesOnlyBoundaries: the whole point of the wavefront
// pattern — the bytes moved per wave are O(b), not O(b²).
func TestWavefrontMovesOnlyBoundaries(t *testing.T) {
	ctx := newCtx()
	a := make([]byte, 256)
	b := make([]byte, 256)
	for i := range a {
		a[i] = byte('A' + i%4)
		b[i] = byte('A' + (i/2)%4)
	}
	res, err := Solve(ctx, a, b, Config{BlockSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res.Length == 0 {
		t.Fatal("expected a nonzero LCS")
	}
	var spilled int64
	for _, ev := range ctx.Events() {
		spilled += ev.SpillBytes
	}
	// 4×4 tiles; each emits ≤ (2·64+1)·4 boundary bytes + tags ≈ 520 B
	// to ≤3 consumers. Anything near tile-sized (64²·4 = 16 KiB per
	// tile) would mean we shipped payloads, not boundaries.
	tiles := int64(16)
	if spilled > tiles*3*600 {
		t.Fatalf("moved %d bytes — boundaries only should be ≤ %d", spilled, tiles*3*600)
	}
}
