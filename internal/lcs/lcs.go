// Package lcs extends the framework beyond the GEP class — the paper's
// first future-work item (§VI: "extend the framework to include other
// data-intensive DP algorithms (beyond GEP)"). It implements the longest
// common subsequence DP, the archetype of the sequence-alignment family
// the paper's introduction cites (Smith-Waterman on Spark [30]), as a
// blocked wavefront computation on the same engine:
//
//   - the DP table L[i,j] = LCS length of prefixes a[:i], b[:j] is tiled
//     into an rA×rB grid;
//   - tile (i,j) depends on its left, upper and upper-left neighbours,
//     but only through its incoming boundary row/column — so each
//     anti-diagonal wave is one parallel stage, and only O(b) boundary
//     vectors move between stages (a much lighter communication pattern
//     than GEP's panels, which is the point of the comparison);
//   - boundaries travel through the same pair-RDD machinery
//     (flatMap + partitionBy) as the GEP drivers' tiles.
package lcs

import (
	"fmt"
	"time"

	"dpspark/internal/matrix"
	"dpspark/internal/rdd"
	"dpspark/internal/simtime"
)

// Config tunes the distributed LCS.
type Config struct {
	// BlockSize is the tile edge (cells per tile side).
	BlockSize int
	// Partitions is the RDD partition count (0 → 2× total cores).
	Partitions int
}

// Result reports the run.
type Result struct {
	// Length is the LCS length.
	Length int
	// Time is the modelled cluster time.
	Time simtime.Duration
	// Wall is the real elapsed time.
	Wall time.Duration
	// Waves is the number of anti-diagonal stages.
	Waves int
}

// boundary carries a tile's outgoing edge values to its consumers.
type boundary struct {
	// Row is the tile's last row (consumed by the tile below), Col its
	// last column (consumed by the tile to the right); Corner is the
	// bottom-right cell (consumed by the diagonal neighbour).
	Row, Col []int32
	Corner   int32
}

// SizeBytes implements the engine sizer hook.
func (b boundary) SizeBytes() int64 {
	return int64(len(b.Row)+len(b.Col))*4 + 4
}

// msg is a tagged boundary addressed to a consumer tile: from the upper
// neighbour (row boundary), the left neighbour (column boundary) or the
// diagonal neighbour (corner only — the L[i-1,j-1] a match reads).
type msg struct {
	FromRow  bool
	FromCol  bool
	FromDiag bool
	B        boundary
}

// SizeBytes implements the engine sizer hook.
func (m msg) SizeBytes() int64 { return m.B.SizeBytes() + 2 }

// Solve computes the LCS length of a and b on the engine.
func Solve(ctx *rdd.Context, a, b []byte, cfg Config) (*Result, error) {
	if cfg.BlockSize < 1 {
		return nil, fmt.Errorf("lcs: BlockSize must be ≥1")
	}
	if len(a) == 0 || len(b) == 0 {
		return &Result{}, nil
	}
	if cfg.Partitions < 1 {
		cfg.Partitions = ctx.Cluster().DefaultPartitions()
	}
	start := time.Now()
	clock0 := ctx.Clock()
	bs := cfg.BlockSize
	rA := (len(a) + bs - 1) / bs
	rB := (len(b) + bs - 1) / bs
	part := rdd.NewHashPartitioner(cfg.Partitions)

	// State: per-tile incoming boundaries, keyed by tile coordinate.
	// Wave w computes tiles with i+j == w.
	pending := rdd.ParallelizePairs(ctx, nil2[msg](), part)
	var lastCorner int32
	waves := rA + rB - 1
	for w := 0; w < waves; w++ {
		w := w
		// Assemble each wave tile's inputs from the pending boundaries.
		grouped := rdd.CombineByKey(pending,
			func(m msg) []msg { return []msg{m} },
			func(g []msg, m msg) []msg { return append(g, m) },
			func(x, y []msg) []msg { return append(x, y...) },
			part)

		// Seed the origin tile (every other tile has at least one
		// incoming boundary message).
		wave := grouped
		if w == 0 {
			seed := rdd.ParallelizePairs(ctx,
				[]rdd.Pair[matrix.Coord, []msg]{rdd.KV(matrix.Coord{I: 0, J: 0}, []msg(nil))}, part)
			wave = grouped.Union(seed)
		}

		// Compute the wave: each tile runs the local DP given its
		// boundaries and emits boundaries for its right/lower/diagonal
		// neighbours.
		out := rdd.FlatMap(wave,
			func(tc *rdd.TaskContext, p rdd.Pair[matrix.Coord, []msg]) []rdd.Pair[matrix.Coord, msg] {
				i, j := p.Key.I, p.Key.J
				if i+j != w || i >= rA || j >= rB {
					// Boundary for a later wave: forward unchanged.
					var fwd []rdd.Pair[matrix.Coord, msg]
					for _, m := range p.Value {
						fwd = append(fwd, rdd.KV(p.Key, m))
					}
					return fwd
				}
				var top, left boundary
				var haveTop, haveLeft bool
				var diagCorner int32
				for _, m := range p.Value {
					switch {
					case m.FromRow:
						top = m.B
						haveTop = true
					case m.FromCol:
						left = m.B
						haveLeft = true
					case m.FromDiag:
						diagCorner = m.B.Corner
					}
				}
				bnd := computeTile(a, b, bs, i, j, top, haveTop, left, haveLeft, diagCorner)
				tc.ChargeCompute(tileCost(tc, bs), 1)
				var outs []rdd.Pair[matrix.Coord, msg]
				if j+1 < rB {
					outs = append(outs, rdd.KV(matrix.Coord{I: i, J: j + 1}, msg{FromCol: true, B: bnd}))
				}
				if i+1 < rA {
					outs = append(outs, rdd.KV(matrix.Coord{I: i + 1, J: j}, msg{FromRow: true, B: bnd}))
				}
				if i+1 < rA && j+1 < rB {
					outs = append(outs, rdd.KV(matrix.Coord{I: i + 1, J: j + 1},
						msg{FromDiag: true, B: boundary{Corner: bnd.Corner}}))
				}
				if i == rA-1 && j == rB-1 {
					// Final tile: keep the corner readable by the driver.
					outs = append(outs, rdd.KV(matrix.Coord{I: rA, J: rB}, msg{B: boundary{Corner: bnd.Corner}}))
				}
				return outs
			})
		pending = rdd.PartitionBy(out, part)
		if err := pending.Checkpoint(); err != nil {
			return nil, err
		}
	}

	final, err := pending.Collect()
	if err != nil {
		return nil, err
	}
	for _, p := range final {
		if p.Key.I == rA && p.Key.J == rB {
			lastCorner = p.Value.B.Corner
		}
	}
	return &Result{
		Length: int(lastCorner),
		Time:   ctx.Clock() - clock0,
		Wall:   time.Since(start),
		Waves:  waves,
	}, nil
}

// nil2 works around Go's inference for an empty typed pair slice.
func nil2[V any]() []rdd.Pair[matrix.Coord, V] { return nil }

// tileCost prices one b×b tile of LCS cells (two comparisons and a max
// per cell ≈ one GEP update).
func tileCost(tc *rdd.TaskContext, bs int) simtime.Duration {
	m := tc.Ctx().Model()
	perUpdate := m.P.IterUpdateNs / m.C.Node.ClockGHz * 1e-9
	return simtime.Duration(float64(bs) * float64(bs) * perUpdate)
}

// computeTile runs the classic LCS recurrence on tile (ti, tj) given the
// incoming boundaries, returning the outgoing boundary. Missing
// boundaries mean table edges (zeros). diagCorner is L[iLo-1][jLo-1]
// from the diagonal neighbour (0 on the edges).
func computeTile(a, b []byte, bs, ti, tj int, top boundary, haveTop bool, left boundary, haveLeft bool, diagCorner int32) boundary {
	iLo, jLo := ti*bs, tj*bs
	iHi, jHi := min(iLo+bs, len(a)), min(jLo+bs, len(b))
	rows := iHi - iLo
	cols := jHi - jLo

	// prev and cur are DP rows including a left border cell:
	// prev = L[iLo-1][jLo-1 .. jHi-1], with the corner from the diagonal
	// neighbour and the rest from the upper neighbour's row boundary.
	prev := make([]int32, cols+1)
	cur := make([]int32, cols+1)
	prev[0] = diagCorner
	if haveTop {
		copy(prev[1:], top.Row[:cols])
	}

	out := boundary{Row: make([]int32, cols), Col: make([]int32, rows)}
	for r := 0; r < rows; r++ {
		if haveLeft {
			cur[0] = left.Col[r]
		} else {
			cur[0] = 0
		}
		for c := 0; c < cols; c++ {
			if a[iLo+r] == b[jLo+c] {
				cur[c+1] = prev[c] + 1
			} else if prev[c+1] >= cur[c] {
				cur[c+1] = prev[c+1]
			} else {
				cur[c+1] = cur[c]
			}
		}
		out.Col[r] = cur[cols]
		prev, cur = cur, prev
	}
	copy(out.Row, prev[1:cols+1])
	out.Corner = prev[cols]
	return out
}

func min(x, y int) int {
	if x < y {
		return x
	}
	return y
}
