// Package dpspark executes dynamic-programming algorithms of the Gaussian
// Elimination Paradigm (GEP) — Floyd-Warshall all-pairs shortest paths,
// Gaussian elimination without pivoting, transitive closure and other
// closed-semiring path problems — on a Spark-like distributed dataflow
// engine, reproducing "Efficient Execution of Dynamic Programming
// Algorithms on Apache Spark" (IEEE CLUSTER 2020).
//
// The package is a facade over the building blocks in internal/: the
// engine (internal/rdd), the GEP drivers (internal/core), the kernels
// (internal/kernels) and the cluster cost model (internal/cluster,
// internal/costmodel, internal/sim). A Session binds a cluster
// description; solvers then run either for real (the engine computes
// actual results, goroutine-parallel) or symbolically (paper-scale
// performance modelling, no payload arithmetic):
//
//	s := dpspark.NewSession(dpspark.Local(8))
//	g := dpspark.RandomGraph(512, 0.05, 1, 10, 42)
//	dist, stats, err := s.APSP(g, dpspark.Config{BlockSize: 128})
//
// See examples/ for runnable programs and cmd/dpspark for the harness
// that regenerates every table and figure of the paper's evaluation.
package dpspark

import (
	"math/rand"

	"dpspark/internal/apsp"
	"dpspark/internal/closure"
	"dpspark/internal/cluster"
	"dpspark/internal/core"
	"dpspark/internal/ge"
	"dpspark/internal/graph"
	"dpspark/internal/lcs"
	"dpspark/internal/matrix"
	"dpspark/internal/obs"
	"dpspark/internal/rdd"
	"dpspark/internal/semiring"
)

// Re-exported building blocks. (This module ships as a self-contained
// reproduction; the aliases keep one canonical definition in internal/.)
type (
	// Graph is a directed weighted graph.
	Graph = graph.Graph
	// Matrix is a square dense matrix.
	Matrix = matrix.Dense
	// Config carries the paper's tunables: block size, driver,
	// iterative vs recursive kernels, r_shared, OMP-style threads,
	// partitions and partitioner.
	Config = core.Config
	// Stats reports a run's modelled time and outcome.
	Stats = core.Stats
	// Cluster describes the (simulated) hardware.
	Cluster = cluster.Cluster
	// Semiring is a closed semiring for path problems.
	Semiring = semiring.Semiring
	// Observer is the observability sink: span tracer plus metrics
	// registry (internal/obs).
	Observer = obs.Observer
)

// NewObserver creates a standalone observer (metrics on, tracing off
// until EnableTrace) for sharing across sessions.
func NewObserver() *Observer { return obs.New() }

// Driver kinds (tile-movement strategies).
const (
	// IM is the In-Memory shuffle driver (Listing 1 of the paper).
	IM = core.IM
	// CB is the Collect-Broadcast driver (Listing 2).
	CB = core.CB
)

// Cluster presets.
var (
	// Skylake16 is the paper's primary 16-node cluster.
	Skylake16 = cluster.Skylake16
	// Haswell16 is the paper's weaker portability cluster.
	Haswell16 = cluster.Haswell16
	// Local is a single-node cluster for real-mode runs.
	Local = cluster.Local
)

// Session binds solvers to a cluster. Each Session owns an engine context
// and a virtual clock; create a fresh Session per experiment for clean
// timing.
type Session struct {
	ctx *rdd.Context
}

// NewSession creates a session on the given cluster.
func NewSession(c *Cluster) *Session {
	return &Session{ctx: rdd.NewContext(rdd.Conf{Cluster: c})}
}

// NewSessionExecutorCores creates a session with an explicit
// executor-cores setting (concurrent task slots per node).
func NewSessionExecutorCores(c *Cluster, execCores int) *Session {
	return &Session{ctx: rdd.NewContext(rdd.Conf{Cluster: c, ExecutorCores: execCores})}
}

// NewSessionKernelThreads creates a session whose executors run
// intra-tile parallel kernels: each node owns a shared kernel pool of
// the given width, tasks split tile updates into row bands on it, and
// the default task-slot count co-tunes to cores/threads — the paper's
// executor-cores × OMP_NUM_THREADS trade-off. Results are bit-identical
// to a serial session's.
func NewSessionKernelThreads(c *Cluster, threads int) *Session {
	return &Session{ctx: rdd.NewContext(rdd.Conf{Cluster: c, KernelThreads: threads})}
}

// NewSessionObserved creates a session that reports spans and metrics
// into the given observer (pass one observer to several sessions to
// aggregate a sweep into a single trace/metrics export). execCores ≤ 0
// uses all physical cores per node.
func NewSessionObserved(c *Cluster, execCores int, o *Observer) *Session {
	return &Session{ctx: rdd.NewContext(rdd.Conf{Cluster: c, ExecutorCores: execCores, Observer: o})}
}

// Context exposes the underlying engine context (ledger, clock, model).
func (s *Session) Context() *rdd.Context { return s.ctx }

// Observer exposes the session's observability sink: the span tracer
// (Chrome trace-event export via WriteChromeTrace, opt-in through
// EnableTrace) and the metrics registry (Prometheus text export via
// Metrics().WritePrometheus).
func (s *Session) Observer() *Observer { return s.ctx.Observer() }

// APSP computes all-pairs shortest distances of a directed graph with
// Floyd-Warshall over the min-plus semiring.
func (s *Session) APSP(g *Graph, cfg Config) (*Matrix, *Stats, error) {
	return apsp.New(cfg).Solve(s.ctx, g)
}

// APSPSemiring solves the all-pairs path problem over an arbitrary closed
// semiring; d0 is the n×n label matrix (1̄ diagonal, 0̄ for absent edges).
func (s *Session) APSPSemiring(d0 *Matrix, sr Semiring, cfg Config) (*Matrix, *Stats, error) {
	cfg.Rule = semiring.SemiringRule{S: sr}
	return apsp.New(cfg).SolveMatrix(s.ctx, d0)
}

// TransitiveClosure computes reachability (0/1 matrix) of a directed
// graph — Warshall's algorithm over the boolean semiring.
func (s *Session) TransitiveClosure(g *Graph, cfg Config) (*Matrix, *Stats, error) {
	cfg.Rule = semiring.NewTransitiveClosure()
	return apsp.New(cfg).SolveMatrix(s.ctx, g.AdjacencyBool())
}

// StronglyConnectedComponents labels each vertex with its SCC (dense
// labels in [0, #components)), computed from the distributed transitive
// closure.
func (s *Session) StronglyConnectedComponents(g *Graph, cfg Config) ([]int, *Stats, error) {
	c, stats, err := closure.New(cfg).Solve(s.ctx, g)
	if err != nil {
		return nil, stats, err
	}
	return closure.Components(c), stats, nil
}

// SolveLinear solves A·x = b by distributed Gaussian elimination without
// pivoting (A must be diagonally dominant or SPD) plus driver-side back
// substitution.
func (s *Session) SolveLinear(a *Matrix, b []float64, cfg Config) ([]float64, *Stats, error) {
	return ge.New(cfg).Solve(s.ctx, a, b)
}

// Eliminate runs distributed forward elimination on an n×n GEP table and
// returns the eliminated table (use ge.LU / ge.BackSubstitute for
// factors and solutions).
func (s *Session) Eliminate(x *Matrix, cfg Config) (*Matrix, *Stats, error) {
	return ge.New(cfg).Eliminate(s.ctx, x)
}

// LCS computes the longest-common-subsequence length of two byte
// sequences with the blocked wavefront DP — the framework's beyond-GEP
// extension (sequence alignment family).
func (s *Session) LCS(a, b []byte, blockSize int) (int, *Stats, error) {
	res, err := lcs.Solve(s.ctx, a, b, lcs.Config{BlockSize: blockSize})
	if err != nil {
		return 0, nil, err
	}
	return res.Length, &Stats{Time: res.Time, Wall: res.Wall, Iterations: res.Waves}, nil
}

// ShortestPath reconstructs one shortest path u→v from a solved distance
// matrix, or nil if unreachable.
func ShortestPath(g *Graph, dist *Matrix, u, v int) []int {
	return apsp.ReconstructPath(g, dist, u, v)
}

// Residual returns max|A·x − b| for solution checking.
func Residual(a *Matrix, x, b []float64) float64 { return ge.Residual(a, x, b) }

// MinPlus returns the tropical semiring (shortest paths).
func MinPlus() Semiring { return semiring.MinPlus() }

// MaxMin returns the bottleneck semiring (widest paths).
func MaxMin() Semiring { return semiring.MaxMin() }

// RandomGraph generates an Erdős–Rényi style directed graph with edge
// probability p and uniform weights in [wLo, wHi).
func RandomGraph(n int, p, wLo, wHi float64, seed int64) *Graph {
	return graph.Random(n, p, wLo, wHi, rand.New(rand.NewSource(seed)))
}

// GridGraph generates a rows×cols road-network-style grid with random
// per-direction weights.
func GridGraph(rows, cols int, wLo, wHi float64, seed int64) *Graph {
	return graph.Grid(rows, cols, wLo, wHi, rand.New(rand.NewSource(seed)))
}

// RandomSystem generates a diagonally dominant m×m system A·x = b safe
// for elimination without pivoting.
func RandomSystem(m int, seed int64) (*Matrix, []float64) {
	rng := rand.New(rand.NewSource(seed))
	a := matrix.NewDense(m)
	a.FillDiagonallyDominant(rng)
	b := make([]float64, m)
	for i := range b {
		b[i] = rng.NormFloat64() * 10
	}
	return a, b
}
