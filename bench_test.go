package dpspark

// The benchmark harness: one testing.B target per table and figure of the
// paper's evaluation (model mode — regenerates the experiment at a
// CI-friendly problem size; run cmd/dpspark for full 32K paper scale),
// plus real-mode benchmarks of the kernels and the engine, and the
// ablations DESIGN.md §5 calls out.
//
//	go test -bench=. -benchmem
//
// Model-mode benches report the regenerated headline metric via b.ReportMetric
// (modelled seconds), so shape changes are visible in benchmark diffs.

import (
	"math/rand"
	"testing"
	"time"

	"dpspark/internal/baseline"
	"dpspark/internal/cluster"
	"dpspark/internal/core"
	"dpspark/internal/experiments"
	"dpspark/internal/kernels"
	"dpspark/internal/matrix"
	"dpspark/internal/rdd"
	"dpspark/internal/semiring"
	"dpspark/internal/simtime"
	"dpspark/internal/store"
)

// benchN is the model-mode problem size for benchmarks: large enough to
// preserve the paper's grid shapes (r = 8..32 across block sizes), small
// enough for quick runs.
const benchN = 8192

// BenchmarkTableI regenerates Table I (GE, CB, 4-way recursive kernels:
// executor-cores × OMP_NUM_THREADS grid) and reports the best cell.
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, results := experiments.TableI(benchN)
		reportBest(b, results)
	}
}

// BenchmarkTableII regenerates Table II (FW-APSP, IM, 16-way recursive).
func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, results := experiments.TableII(benchN)
		reportBest(b, results)
	}
}

// BenchmarkFig6FW regenerates the FW-APSP panel of Fig. 6 and reports the
// headline iterative→recursive speedup.
func BenchmarkFig6FW(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, results := experiments.Fig6(experiments.FW, benchN)
		h := experiments.ComputeHeadline(experiments.FW, results)
		b.ReportMetric(h.Speedup, "speedup")
	}
}

// BenchmarkFig6GE regenerates the GE panel of Fig. 6.
func BenchmarkFig6GE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, results := experiments.Fig6(experiments.GE, benchN)
		h := experiments.ComputeHeadline(experiments.GE, results)
		b.ReportMetric(h.Speedup, "speedup")
	}
}

// BenchmarkFig8 regenerates the portability comparison and reports the
// cluster-2/cluster-1 slowdown of the reference configuration.
func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, results := experiments.Fig8(benchN)
		var c1, c2 float64
		for _, r := range results {
			if r.Block == 1024 && r.Recursive && r.Driver == core.IM {
				if r.Cluster.Name == "skylake-16" {
					c1 = r.Time.Seconds()
				} else {
					c2 = r.Time.Seconds()
				}
			}
		}
		if c1 > 0 {
			b.ReportMetric(c2/c1, "c2/c1")
		}
	}
}

// BenchmarkFig9 regenerates the weak-scaling experiment and reports the
// recursive GE series' 64-node/1-node growth (1.0 = perfect scaling).
func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		chart, _ := experiments.Fig9()
		for _, l := range chart.Lines {
			if l.Name == "GE CB rec4 b1024 omp8" {
				b.ReportMetric(l.Points[2].Value/l.Points[0].Value, "growth64")
			}
		}
	}
}

func reportBest(b *testing.B, results []experiments.Result) {
	b.Helper()
	best := results[0]
	for _, r := range results {
		if r.Note() == "" && r.Time < best.Time {
			best = r
		}
	}
	b.ReportMetric(best.Time.Seconds(), "model_s")
}

// --- Ablation benches (DESIGN.md §5) ---

// BenchmarkAblationDriver prices IM vs CB per benchmark.
func BenchmarkAblationDriver(b *testing.B) {
	for _, bench := range []experiments.Benchmark{experiments.FW, experiments.GE} {
		for _, driver := range []core.DriverKind{core.IM, core.CB} {
			b.Run(bench.String()+"/"+driver.String(), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					r := experiments.Run(experiments.Cell{
						Bench: bench, N: benchN, Driver: driver, Block: 512,
					})
					b.ReportMetric(r.Time.Seconds(), "model_s")
				}
			})
		}
	}
}

// BenchmarkAblationKernelCache sweeps block sizes for both kernel
// families, exposing the L2 crossover of §V-C.
func BenchmarkAblationKernelCache(b *testing.B) {
	for _, block := range []int{256, 512, 1024, 2048} {
		for _, rec := range []bool{false, true} {
			name := "iter"
			cell := experiments.Cell{Bench: experiments.FW, N: benchN, Driver: core.IM, Block: block}
			if rec {
				name = "rec4"
				cell.Recursive = true
				cell.RShared = 4
				cell.Threads = 8
			}
			b.Run(name+"/"+itoa(block), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					r := experiments.Run(cell)
					b.ReportMetric(r.Time.Seconds(), "model_s")
				}
			})
		}
	}
}

// BenchmarkAblationRShared sweeps the kernel fan-out.
func BenchmarkAblationRShared(b *testing.B) {
	for _, rs := range []int{2, 4, 8, 16} {
		b.Run(itoa(rs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := experiments.Run(experiments.Cell{
					Bench: experiments.FW, N: benchN, Driver: core.IM, Block: 1024,
					Recursive: true, RShared: rs, Threads: 8,
				})
				b.ReportMetric(r.Time.Seconds(), "model_s")
			}
		})
	}
}

// BenchmarkAblationPartitioner compares the default hash partitioner to
// the grid partitioner (the paper's future work).
func BenchmarkAblationPartitioner(b *testing.B) {
	for _, grid := range []bool{false, true} {
		name := "hash"
		if grid {
			name = "grid"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, results := experiments.AblationPartitioner(benchN)
				idx := 0
				if grid {
					idx = 1
				}
				b.ReportMetric(results[idx].Time.Seconds(), "model_s")
			}
		})
	}
}

// BenchmarkAblationPartitions sweeps the RDD-partition multiplier.
func BenchmarkAblationPartitions(b *testing.B) {
	cl := cluster.Skylake16()
	for _, mult := range []int{1, 2, 4} {
		b.Run(itoa(mult)+"x", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := experiments.Run(experiments.Cell{
					Bench: experiments.FW, N: benchN, Driver: core.IM, Block: 1024,
					Recursive: true, RShared: 4, Threads: 8,
					Partitions: mult * cl.TotalCores(),
				})
				b.ReportMetric(r.Time.Seconds(), "model_s")
			}
		})
	}
}

// BenchmarkAblationUndirected compares the baseline's undirected
// upper-triangle optimization against the directed generalization.
func BenchmarkAblationUndirected(b *testing.B) {
	for _, und := range []bool{false, true} {
		name := "directed"
		if und {
			name = "undirected"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ctx := rdd.NewContext(rdd.Conf{Cluster: cluster.Skylake16()})
				stats, err := baseline.SolveSymbolic(ctx, benchN, baseline.Config{BlockSize: 512, Undirected: und})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(stats.Time.Seconds(), "model_s")
			}
		})
	}
}

// --- Recovery benchmarks: modelled overhead under the standard fault
// plan (BENCH_recovery.json — the robustness trajectory) ---

// recoveryBenchSeed fixes the fault schedule so reruns are comparable.
const recoveryBenchSeed = 20260805

// BenchmarkRecoveryOverhead prices failure recovery per driver and crash
// rate: a symbolic FW-APSP run (n=8192, b=1024, r=8 → 32 planned stages)
// under a seeded plan of c executor crashes plus 2 stragglers and 1
// staging-disk loss, with speculation on. Reported metrics: modelled
// seconds, recovery seconds and overhead_pct vs the fault-free run.
func BenchmarkRecoveryOverhead(b *testing.B) {
	const stages, blk = 32, 1024
	run := func(driver core.DriverKind, crashes int) *core.Stats {
		conf := rdd.Conf{Cluster: cluster.Skylake16(), Speculation: true}
		if crashes > 0 {
			conf.FaultPlan = rdd.RandomFaultPlan(recoveryBenchSeed, stages, conf.Cluster.Nodes, crashes, 2, 1)
		}
		ctx := rdd.NewContext(conf)
		bl := matrix.NewSymbolicBlocked(benchN, blk)
		_, stats, err := core.Run(ctx, bl, core.Config{
			Rule: semiring.NewFloydWarshall(), BlockSize: blk, Driver: driver,
		})
		if err != nil {
			b.Fatal(err)
		}
		return stats
	}
	for _, driver := range []core.DriverKind{core.IM, core.CB} {
		clean := run(driver, 0)
		for _, crashes := range []int{1, 2, 4} {
			b.Run(driver.String()+"/crashes"+itoa(crashes), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					stats := run(driver, crashes)
					b.ReportMetric(stats.Time.Seconds(), "model_s")
					b.ReportMetric(stats.RecoveryTime.Seconds(), "recovery_s")
					b.ReportMetric((stats.Time.Seconds()/clean.Time.Seconds()-1)*100, "overhead_pct")
				}
			})
		}
	}
}

// BenchmarkRecoveryDetectionLatency sweeps the heartbeat failure
// detector's lease interval under a fixed crash plan: interval 0 is the
// legacy instant-detection baseline; longer leases delay every
// declaration by misses × interval of modelled time. Reported metrics:
// modelled seconds and the detection wait the run absorbed.
func BenchmarkRecoveryDetectionLatency(b *testing.B) {
	const stages, blk = 32, 1024
	plan := rdd.RandomFaultPlan(recoveryBenchSeed, stages, cluster.Skylake16().Nodes, 2, 2, 1)
	run := func(interval simtime.Duration) *core.Stats {
		ctx := rdd.NewContext(rdd.Conf{
			Cluster:           cluster.Skylake16(),
			Speculation:       true,
			FaultPlan:         plan,
			HeartbeatInterval: interval,
		})
		bl := matrix.NewSymbolicBlocked(benchN, blk)
		_, stats, err := core.Run(ctx, bl, core.Config{
			Rule: semiring.NewFloydWarshall(), BlockSize: blk, Driver: core.IM,
		})
		if err != nil {
			b.Fatal(err)
		}
		return stats
	}
	for _, interval := range []simtime.Duration{0, simtime.Second, 2 * simtime.Second, 5 * simtime.Second} {
		b.Run("interval"+itoa(int(interval.Seconds()))+"s", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				stats := run(interval)
				b.ReportMetric(stats.Time.Seconds(), "model_s")
				b.ReportMetric(stats.DetectionTime.Seconds(), "detection_s")
			}
		})
	}
}

// BenchmarkRecoverySpeculation isolates the speculation win: heavy
// stragglers on update-stage tasks, speculation off vs on (the on case
// reports its saving). 32 partitions over a 16×16 tile grid keep every
// partition populated, so the stragglers dilate real work.
func BenchmarkRecoverySpeculation(b *testing.B) {
	run := func(speculate bool) *core.Stats {
		ctx := rdd.NewContext(rdd.Conf{
			Cluster:     cluster.Skylake16(),
			Speculation: speculate,
			FaultPlan: &rdd.FaultPlan{Stragglers: []rdd.Straggler{
				{Stage: 2, Partition: 3, Factor: 6},
				{Stage: 6, Partition: 9, Factor: 6},
			}},
		})
		bl := matrix.NewSymbolicBlocked(benchN, 512)
		_, stats, err := core.Run(ctx, bl, core.Config{
			Rule: semiring.NewFloydWarshall(), BlockSize: 512, Driver: core.IM,
			Partitions: 32,
		})
		if err != nil {
			b.Fatal(err)
		}
		return stats
	}
	off := run(false)
	b.Run("on", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			stats := run(true)
			b.ReportMetric(stats.Time.Seconds(), "model_s")
			b.ReportMetric((1-stats.Time.Seconds()/off.Time.Seconds())*100, "saved_pct")
		}
	})
}

// --- Real-mode benchmarks: actual computation on this machine ---

// BenchmarkKernelIterative measures the loop kernels per update. Sizes
// 512 and 1024 are the cache-blocking regime: the tile no longer fits L2
// and the k-blocked fast path's reuse shows up directly in MB/s.
func BenchmarkKernelIterative(b *testing.B) {
	for _, size := range []int{128, 256, 512, 1024} {
		b.Run("D/"+itoa(size), func(b *testing.B) {
			rule := semiring.NewFloydWarshall()
			x, u, v, w := randomTiles(size)
			exec := kernels.NewIterative(rule)
			b.SetBytes(int64(size) * int64(size) * int64(size) * 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				exec.Apply(semiring.KindD, x, u, v, w)
			}
		})
	}
}

// BenchmarkKernelParallel measures the row-band parallel split of the
// full-range kind-D update across pool widths — the intra-tile
// KernelThreads path the executors run. t1 is LoopPool's serial
// fall-through, so t<k>/t1 is the measured speedup of k kernel threads
// (bit-identical results by construction; on a single-core machine the
// ratio hovers at 1).
func BenchmarkKernelParallel(b *testing.B) {
	for _, size := range []int{256, 512, 1024} {
		for _, threads := range []int{1, 2, 4, 8} {
			b.Run("D/"+itoa(size)+"/t"+itoa(threads), func(b *testing.B) {
				rule := semiring.NewFloydWarshall()
				x, u, v, w := randomTiles(size)
				exec := kernels.NewIterative(rule)
				pool := kernels.NewPool(threads)
				b.SetBytes(int64(size) * int64(size) * int64(size) * 8)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					exec.ApplyWith(pool, semiring.KindD, x, u, v, w)
				}
			})
		}
	}
}

// BenchmarkKernelRecursive measures the r-way R-DP kernels across
// fan-outs and worker threads.
func BenchmarkKernelRecursive(b *testing.B) {
	for _, rs := range []int{2, 4} {
		for _, threads := range []int{1, 4} {
			b.Run("D/r"+itoa(rs)+"/t"+itoa(threads), func(b *testing.B) {
				rule := semiring.NewFloydWarshall()
				size := 256
				x, u, v, w := randomTiles(size)
				exec := kernels.NewRecursiveExec(rule, rs, 32, threads)
				b.SetBytes(int64(size) * int64(size) * int64(size) * 8)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					exec.Apply(semiring.KindD, x, u, v, w)
				}
			})
		}
	}
}

// BenchmarkEngineAPSPReal runs the full engine for real on a small APSP
// problem, per driver.
func BenchmarkEngineAPSPReal(b *testing.B) {
	g := RandomGraph(256, 0.05, 1, 10, 3)
	for _, driver := range []core.DriverKind{core.IM, core.CB} {
		b.Run(driver.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := NewSession(Local(4))
				if _, _, err := s.APSP(g, Config{BlockSize: 64, Driver: driver}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineGEReal runs a real distributed elimination.
func BenchmarkEngineGEReal(b *testing.B) {
	a, rhs := RandomSystem(256, 4)
	for i := 0; i < b.N; i++ {
		s := NewSession(Local(4))
		if _, _, err := s.SolveLinear(a, rhs, Config{BlockSize: 64, Driver: CB}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBaselineReal runs the Schoeneman–Zola baseline for real.
func BenchmarkBaselineReal(b *testing.B) {
	g := RandomGraph(256, 0.05, 1, 10, 5)
	d := g.DistanceMatrix()
	for i := 0; i < b.N; i++ {
		ctx := rdd.NewContext(rdd.Conf{Cluster: Local(4)})
		if _, _, err := baseline.Solve(ctx, d, baseline.Config{BlockSize: 64}); err != nil {
			b.Fatal(err)
		}
	}
}

func randomTiles(size int) (x, u, v, w *matrix.Tile) {
	rng := rand.New(rand.NewSource(9))
	mk := func() *matrix.Tile {
		t := matrix.NewTile(size)
		for i := range t.Data {
			t.Data[i] = rng.Float64() * 10
		}
		for i := 0; i < size; i++ {
			t.Set(i, i, 0)
		}
		return t
	}
	return mk(), mk(), mk(), mk()
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// --- Durable block store benchmarks (BENCH_store.json) ---

// BenchmarkStoreSpill prices the checksummed spill path per block: every
// Put lands over budget and is immediately evicted to a CRC32C-framed
// file, then read back and verified from the disk tier. Block size is a
// b=128 tile payload.
func BenchmarkStoreSpill(b *testing.B) {
	blob := make([]byte, 128*128*8)
	rng := rand.New(rand.NewSource(31))
	for i := range blob {
		blob[i] = byte(rng.Intn(256))
	}
	st, err := store.Open(b.TempDir(), store.Options{MemoryBudget: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(blob)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := "bench/" + itoa(i%64)
		if err := st.Put(key, blob); err != nil {
			b.Fatal(err)
		}
		if _, err := st.Get(key); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreCheckpoint prices one driver checkpoint round trip: an
// atomically-written, per-section-checksummed file the size of an r=8,
// b=128 grid (8 MiB of tile payload), written and re-verified.
func BenchmarkStoreCheckpoint(b *testing.B) {
	blocks := make([]byte, 8*8*128*128*8)
	rng := rand.New(rand.NewSource(32))
	for i := range blocks {
		blocks[i] = byte(rng.Intn(256))
	}
	meta := []byte(`{"iteration":4,"n":1024,"b":128,"r":8}`)
	dir := b.TempDir()
	b.SetBytes(int64(len(blocks)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := store.WriteCheckpoint(dir, i%4, meta, blocks); err != nil {
			b.Fatal(err)
		}
		if _, _, err := store.ReadCheckpoint(dir, i%4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDurableOverhead measures what durability costs a real run: a
// real-mode FW n=512 b=128 IM run with the store off, on (unbounded
// memory tier) and under a tight 256 KiB budget that forces every staged
// bucket through the disk tier. Reported: spilled blocks and real spill
// wall milliseconds per run.
func BenchmarkDurableOverhead(b *testing.B) {
	run := func(b *testing.B, durable bool, budget int64) {
		rng := rand.New(rand.NewSource(33))
		in := matrix.NewDense(512)
		in.FillRandom(rng, 1, 9)
		for i := 0; i < 512; i++ {
			in.Set(i, i, 0)
		}
		for i := 0; i < b.N; i++ {
			conf := rdd.Conf{Cluster: cluster.LocalN(4, 2)}
			var dir string
			if durable {
				dir = b.TempDir()
				conf.DurableDir = dir
				conf.MemoryBudget = budget
				conf.SpillCodec = core.TileCodec{}
			}
			ctx := rdd.NewContext(conf)
			rule := semiring.NewFloydWarshall()
			bl := matrix.Block(in, 128, rule.Pad(), rule.PadDiag())
			_, stats, err := core.Run(ctx, bl, core.Config{
				Rule: rule, BlockSize: 128, Driver: core.IM, DurableDir: dir,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(stats.SpilledBlocks), "spilled")
			b.ReportMetric(stats.SpillWall.Seconds()*1e3, "spill_wall_ms")
		}
	}
	b.Run("off", func(b *testing.B) { run(b, false, 0) })
	b.Run("on", func(b *testing.B) { run(b, true, 0) })
	b.Run("tight256KiB", func(b *testing.B) { run(b, true, 256<<10) })
}

// --- Remote replica tier benchmarks (BENCH_remote.json) ---

// remoteBenchInput builds the real-mode FW input the remote benchmarks
// share (n=512, b=128 → r=4, the durable suite's shape).
func remoteBenchInput() *matrix.Dense {
	rng := rand.New(rand.NewSource(35))
	in := matrix.NewDense(512)
	in.FillRandom(rng, 1, 9)
	for i := 0; i < 512; i++ {
		in.Set(i, i, 0)
	}
	return in
}

// BenchmarkRemoteReplication prices the asynchronous replication path: a
// real-mode durable FW run with the remote tier off vs on. Replication
// is off the staging path (a parked queue drained at stage boundaries),
// so the modelled clock is identical; the reported replicated count and
// wall milliseconds show what the copies cost the host.
func BenchmarkRemoteReplication(b *testing.B) {
	in := remoteBenchInput()
	rule := semiring.NewFloydWarshall()
	run := func(b *testing.B, remote bool) {
		for i := 0; i < b.N; i++ {
			conf := rdd.Conf{
				Cluster:    cluster.LocalN(4, 2),
				DurableDir: b.TempDir(),
				SpillCodec: core.TileCodec{},
			}
			if remote {
				conf.RemoteDir = b.TempDir()
			}
			ctx := rdd.NewContext(conf)
			bl := matrix.Block(in, 128, rule.Pad(), rule.PadDiag())
			start := time.Now()
			_, stats, err := core.Run(ctx, bl, core.Config{
				Rule: rule, BlockSize: 128, Driver: core.IM,
			})
			if err != nil {
				b.Fatal(err)
			}
			ctx.Store().FlushReplication()
			b.ReportMetric(float64(ctx.StoreStats().ReplicatedBlocks), "replicated")
			b.ReportMetric(stats.Time.Seconds(), "model_s")
			b.ReportMetric(time.Since(start).Seconds()*1e3, "wall_ms")
		}
	}
	b.Run("off", func(b *testing.B) { run(b, false) })
	b.Run("on", func(b *testing.B) { run(b, true) })
}

// BenchmarkRemoteRestoreVsRecompute prices the two recovery paths for
// the same loss: a mid-run executor crash with the remote tier healthy
// (lost staged outputs restore from replicas) vs down for the whole run
// (degraded mode falls back to partial map-recompute). Reported:
// modelled seconds, recovery seconds, restored and recomputed block
// counts — the EXPERIMENTS "restore vs recompute" row pair.
func BenchmarkRemoteRestoreVsRecompute(b *testing.B) {
	in := remoteBenchInput()
	rule := semiring.NewFloydWarshall()
	run := func(b *testing.B, healthy bool) {
		for i := 0; i < b.N; i++ {
			plan := &rdd.FaultPlan{Crashes: []rdd.ExecutorCrash{{Stage: 7, Node: 1}}}
			if !healthy {
				plan.RemoteOutages = []rdd.RemoteOutage{{From: 0, Dur: 1 << 20}}
			}
			conf := rdd.Conf{
				Cluster:     cluster.LocalN(4, 2),
				DurableDir:  b.TempDir(),
				RemoteDir:   b.TempDir(),
				SpillCodec:  core.TileCodec{},
				Speculation: true,
				FaultPlan:   plan,
			}
			ctx := rdd.NewContext(conf)
			bl := matrix.Block(in, 128, rule.Pad(), rule.PadDiag())
			_, stats, err := core.Run(ctx, bl, core.Config{
				Rule: rule, BlockSize: 128, Driver: core.IM,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(stats.Time.Seconds(), "model_s")
			b.ReportMetric(stats.RecoveryTime.Seconds(), "recovery_s")
			b.ReportMetric(float64(stats.RestoredBlocks), "restored")
			b.ReportMetric(float64(stats.RecomputedBlocks), "recomputed")
		}
	}
	b.Run("recompute", func(b *testing.B) { run(b, false) })
	b.Run("restore", func(b *testing.B) { run(b, true) })
}

// BenchmarkDurableResume measures checkpoint–restart: one durable FW
// n=512 b=128 run leaves its boundary checkpoints on disk; each
// iteration then restarts from the mid-run checkpoint (grid decode +
// engine-state restore + the remaining two iterations) and must land on
// the interrupted run's bits.
func BenchmarkDurableResume(b *testing.B) {
	rng := rand.New(rand.NewSource(34))
	in := matrix.NewDense(512)
	in.FillRandom(rng, 1, 9)
	for i := 0; i < 512; i++ {
		in.Set(i, i, 0)
	}
	dir := b.TempDir()
	rule := semiring.NewFloydWarshall()
	conf := rdd.Conf{Cluster: cluster.LocalN(4, 2), DurableDir: dir, SpillCodec: core.TileCodec{}}
	ctx := rdd.NewContext(conf)
	bl := matrix.Block(in, 128, rule.Pad(), rule.PadDiag())
	full, _, err := core.Run(ctx, bl, core.Config{
		Rule: rule, BlockSize: 128, Driver: core.IM, DurableDir: dir,
	})
	if err != nil {
		b.Fatal(err)
	}
	want := full.ToDense()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		meta, tbl, err := core.LoadCheckpointAt(dir, 2)
		if err != nil {
			b.Fatal(err)
		}
		rconf := conf
		rconf.Restore = &meta.Engine
		rctx := rdd.NewContext(rconf)
		out, _, err := core.Resume(rctx, meta, tbl, core.Config{
			Rule: rule, BlockSize: meta.B, Driver: core.IM,
			Partitions: meta.Partitions, CheckpointEvery: meta.CheckpointEvery,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			got := out.ToDense()
			for j := range got.Data {
				if got.Data[j] != want.Data[j] {
					b.Fatal("resumed bits differ from the uninterrupted run")
				}
			}
		}
	}
}
