// Tuning: the paper's central practical message is that the block
// decomposition r, the kernel fan-out r_shared, OMP_NUM_THREADS and
// executor-cores must be tuned per cluster (§V-C, Fig. 8). This example
// uses the analytic cluster model to autotune FW-APSP for the paper's
// two clusters and shows that the best configuration differs — and that
// carrying cluster #1's configuration to cluster #2 is expensive.
//
//	go run ./examples/tuning
package main

import (
	"fmt"
	"log"

	"dpspark/internal/autotune"
	"dpspark/internal/cluster"
	"dpspark/internal/core"
	"dpspark/internal/semiring"
)

func main() {
	const n = 16384
	rule := semiring.NewFloydWarshall()
	space := autotune.Space{
		Drivers:          []core.DriverKind{core.IM, core.CB},
		BlockSizes:       []int{256, 512, 1024, 2048},
		RShared:          []int{4, 16},
		Threads:          []int{2, 8, 32},
		IncludeIterative: true,
	}

	clusters := []*cluster.Cluster{cluster.Skylake16(), cluster.Haswell16()}
	best := make([]autotune.Outcome, len(clusters))
	for i, cl := range clusters {
		outs, b, err := autotune.Search(cl, rule, n, space)
		if err != nil {
			log.Fatal(err)
		}
		best[i] = b
		fmt.Printf("%s — %d candidates, top 3:\n", cl, len(outs))
		for j := 0; j < 3 && j < len(outs); j++ {
			fmt.Printf("  %d. %-38s %7.0fs\n", j+1, outs[j].Candidate, outs[j].Time.Seconds())
		}
	}

	// What happens if cluster #1's winner is carried to cluster #2
	// unchanged (the paper's Fig. 8 experiment)?
	carried := autotune.Price(clusters[1], rule, n, best[0].Candidate)
	fmt.Printf("\ncluster #1's best (%s) on cluster #2: %.0fs vs tuned %.0fs → %.1f× slower untuned\n",
		best[0].Candidate, carried.Time.Seconds(), best[1].Time.Seconds(),
		carried.Time.Seconds()/best[1].Time.Seconds())
}
