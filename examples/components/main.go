// Components: transitive closure — the third canonical GEP instance the
// paper names (Warshall) — as an application: find the strongly connected
// components of a sparse directed graph and answer reachability queries,
// all through the distributed boolean-semiring solver.
//
//	go run ./examples/components
package main

import (
	"fmt"
	"log"

	"dpspark"
)

func main() {
	// A sparse directed graph: below the strong-connectivity threshold,
	// so it decomposes into many components.
	g := dpspark.RandomGraph(300, 0.006, 1, 2, 17)
	fmt.Printf("graph: %d vertices, %d edges\n", g.N, g.Edges())

	session := dpspark.NewSession(dpspark.Local(4))
	cfg := dpspark.Config{BlockSize: 75, Driver: dpspark.IM}

	labels, stats, err := session.StronglyConnectedComponents(g, cfg)
	if err != nil {
		log.Fatal(err)
	}
	counts := map[int]int{}
	for _, l := range labels {
		counts[l]++
	}
	largest := 0
	for _, n := range counts {
		if n > largest {
			largest = n
		}
	}
	fmt.Printf("found %d strongly connected components (largest has %d vertices)\n",
		len(counts), largest)
	fmt.Printf("solved in %v wall (modelled cluster time %v)\n", stats.Wall.Round(1e6), stats.Time)

	// Reachability via the closure matrix directly.
	tc, _, err := dpspark.NewSession(dpspark.Local(4)).TransitiveClosure(g, cfg)
	if err != nil {
		log.Fatal(err)
	}
	reachable := 0
	for _, v := range tc.Data {
		if v != 0 {
			reachable++
		}
	}
	fmt.Printf("%d of %d ordered pairs are reachable (%.1f%%)\n",
		reachable, g.N*g.N, 100*float64(reachable)/float64(g.N*g.N))
}
