// Linsolve: the paper's linear-algebra benchmark as an application —
// solve a dense diagonally dominant system with distributed Gaussian
// elimination without pivoting, extract the LU factorization, and verify
// both the residual and the factors.
//
//	go run ./examples/linsolve
package main

import (
	"fmt"
	"log"

	"dpspark"
	"dpspark/internal/ge"
)

func main() {
	const m = 600
	a, b := dpspark.RandomSystem(m, 5)
	fmt.Printf("system: %d equations, %d unknowns (diagonally dominant)\n", m, m)

	session := dpspark.NewSession(dpspark.Local(4))
	cfg := dpspark.Config{
		BlockSize:       150,
		Driver:          dpspark.CB, // the paper's winner for GE
		RecursiveKernel: true,
		RShared:         4,
		Threads:         4,
	}
	x, stats, err := session.SolveLinear(a, b, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("solved in %v wall (modelled cluster time %v)\n", stats.Wall.Round(1e6), stats.Time)
	fmt.Printf("residual max|A·x−b| = %.3g\n", dpspark.Residual(a, x, b))

	// GE also yields the LU decomposition (paper §IV): eliminate the raw
	// matrix and extract the factors.
	elim, _, err := dpspark.NewSession(dpspark.Local(4)).Eliminate(a.Clone(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	l, u := ge.LU(elim)
	if diff := ge.MatMul(l, u).MaxAbsDiff(a); diff > 1e-6 {
		log.Fatalf("L·U − A = %v", diff)
	}
	fmt.Printf("LU factorization verified: max|L·U − A| ≤ 1e-6 ✓\n")
	fmt.Printf("U[0,0]=%.3f (first pivot), L unit lower triangular\n", u.At(0, 0))
}
