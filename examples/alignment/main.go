// Alignment: the beyond-GEP extension (paper §VI future work) in action —
// longest common subsequence of two DNA-like sequences via the blocked
// wavefront DP, with the contrast to GEP's communication pattern printed
// from the engine's event log.
//
//	go run ./examples/alignment
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dpspark"
)

func main() {
	// Two related sequences: b is a mutated copy of a.
	rng := rand.New(rand.NewSource(23))
	alphabet := []byte("ACGT")
	a := make([]byte, 1200)
	for i := range a {
		a[i] = alphabet[rng.Intn(4)]
	}
	b := append([]byte(nil), a...)
	for i := range b { // ~20% point mutations
		if rng.Float64() < 0.2 {
			b[i] = alphabet[rng.Intn(4)]
		}
	}

	session := dpspark.NewSession(dpspark.Local(4))
	length, stats, err := session.LCS(a, b, 150)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequences: |a| = %d, |b| = %d\n", len(a), len(b))
	fmt.Printf("LCS length %d (%.1f%% identity) in %d wavefront stages\n",
		length, 100*float64(length)/float64(len(a)), stats.Iterations)
	fmt.Printf("wall %v, modelled cluster time %v\n", stats.Wall.Round(1e6), stats.Time)

	// The wavefront's communication volume: only boundary vectors cross
	// tiles, a fraction of the table GEP problems must move.
	var spilled int64
	for _, ev := range session.Context().Events() {
		spilled += ev.SpillBytes
	}
	table := int64(len(a)) * int64(len(b)) * 4
	fmt.Printf("moved %d boundary bytes between stages — %.2f%% of the %d-byte DP table\n",
		spilled, 100*float64(spilled)/float64(table), table)
}
