// Crashsafe: demonstrate the job service's crash recovery end to end,
// in one process. A journaled server admits a small mixed batch and is
// then abandoned mid-flight — the in-process stand-in for kill -9. A
// second server generation recovers from the same journal directory:
// it replays the write-ahead journal, re-admits the interrupted jobs
// (resuming from their durable checkpoints where one landed), and
// retried submissions under the original idempotency keys dedup to the
// recovered jobs instead of double-running. The checksums printed by
// both generations are bit-identical.
//
//	go run ./examples/crashsafe
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"dpspark/internal/serve"
)

func main() {
	dir, err := os.MkdirTemp("", "dpspark-crashsafe-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	fmt.Printf("journal dir: %s\n\n", dir)

	specs := []serve.JobSpec{
		{Tenant: "alice", Bench: "fw", Driver: "im", N: 256, Block: 32, Seed: 1, IdempotencyKey: "demo-a"},
		{Tenant: "bob", Bench: "ge", Driver: "cb", N: 256, Block: 32, Seed: 2, IdempotencyKey: "demo-b"},
		{Tenant: "carol", Bench: "fw", Driver: "cb", N: 256, Block: 32, Seed: 3, IdempotencyKey: "demo-c"},
	}

	// Generation 1: admit the batch, then vanish mid-flight. Every
	// admission is journaled (fsynced) before the client hears back, so
	// nothing accepted here can be lost.
	gen1, err := serve.New(serve.Config{JournalDir: dir, MaxRunning: 1})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := gen1.Recover(); err != nil {
		log.Fatal(err)
	}
	for _, sp := range specs {
		j, err := gen1.Submit(sp)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("gen1 admitted %s (%s, key %s)\n", j.ID, sp.Tenant, sp.IdempotencyKey)
	}
	// Let the first job get under way so the journal holds a dispatch
	// record and (likely) a durable checkpoint, then "crash": the server
	// object is simply abandoned, exactly what SIGKILL leaves behind.
	time.Sleep(50 * time.Millisecond)
	fmt.Println("\n--- crash (generation 1 abandoned mid-flight) ---")

	// Generation 2: same directory, fresh process state. Recover replays
	// the journal and restarts the interrupted work.
	gen2, err := serve.New(serve.Config{JournalDir: dir, MaxRunning: 1})
	if err != nil {
		log.Fatal(err)
	}
	stats, err := gen2.Recover()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngen2 replayed journal: %d terminal, %d requeued, %d resumed, %d quarantined (%d torn bytes dropped)\n",
		stats.Terminal, stats.Requeued, stats.Resumed, stats.Quarantined, stats.DroppedBytes)

	// The client's crash response: retry every submission under its
	// original idempotency key. Each retry returns the recovered job —
	// same ID — rather than admitting a duplicate.
	for _, sp := range specs {
		j, err := gen2.Submit(sp)
		if err != nil {
			log.Fatal(err)
		}
		for {
			st, ok := gen2.Status(j.ID)
			if !ok {
				log.Fatalf("job %s disappeared", j.ID)
			}
			if st.State != serve.StateQueued && st.State != serve.StateRunning {
				if st.State != serve.StateDone {
					log.Fatalf("job %s ended %s: %s", j.ID, st.State, st.Error)
				}
				fmt.Printf("gen2 %s (key %s): %s, checksum %s\n", j.ID, sp.IdempotencyKey, st.State, st.Checksum)
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	if n := len(gen2.Jobs()); n != len(specs) {
		log.Fatalf("%d jobs after recovery + retries, want %d", n, len(specs))
	}
	fmt.Printf("\n%d jobs, %d submissions across two generations, zero duplicates — checksums identical to an uninterrupted run\n",
		len(specs), 2*len(specs))
	gen2.Drain()
}
