// Quickstart: solve all-pairs shortest paths on a small random directed
// graph with the distributed Floyd-Warshall solver, compare iterative and
// recursive kernels, and verify against Dijkstra.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dpspark"
)

func main() {
	// A directed graph: 400 vertices, ~5% edge density, weights in [1,10).
	g := dpspark.RandomGraph(400, 0.05, 1, 10, 7)
	fmt.Printf("graph: %d vertices, %d edges\n", g.N, g.Edges())

	// The engine simulates a small local "cluster"; the computation runs
	// for real on goroutines.
	session := dpspark.NewSession(dpspark.Local(4))

	// Iterative kernels (the baseline configuration).
	distIter, statsIter, err := session.APSP(g, dpspark.Config{
		BlockSize: 100,
		Driver:    dpspark.IM,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("iterative kernels: wall %v (modelled cluster time %v)\n",
		statsIter.Wall.Round(1e6), statsIter.Time)

	// Recursive 4-way R-DP kernels with 4 worker threads — the paper's
	// OpenMP-offload configuration.
	distRec, statsRec, err := dpspark.NewSession(dpspark.Local(4)).APSP(g, dpspark.Config{
		BlockSize:       100,
		Driver:          dpspark.IM,
		RecursiveKernel: true,
		RShared:         4,
		Threads:         4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recursive kernels: wall %v (modelled cluster time %v)\n",
		statsRec.Wall.Round(1e6), statsRec.Time)

	// Both must agree with each other (up to FP association order — the
	// kernel families add path weights in different orders) and with
	// Dijkstra.
	if diff := distIter.MaxAbsDiff(distRec); diff > 1e-9 {
		log.Fatalf("kernel families disagree: %v", diff)
	}
	if diff := distIter.MaxAbsDiff(g.APSPReference()); diff > 1e-9 {
		log.Fatalf("APSP does not match Dijkstra: %v", diff)
	}
	fmt.Println("validated against Dijkstra ✓")

	// Reconstruct one shortest path.
	if p := dpspark.ShortestPath(g, distIter, 0, g.N-1); p != nil {
		fmt.Printf("shortest path 0→%d (length %.2f): %v\n", g.N-1, distIter.At(0, g.N-1), p)
	}
}
