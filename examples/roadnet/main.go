// Roadnet: an APSP workload in the style of the transportation
// applications the paper cites for Floyd-Warshall — a grid road network
// with asymmetric per-direction travel times. Solves shortest distances
// and widest (maximum-capacity) routes over two different semirings,
// prints a route, and cross-checks against the independent
// Schoeneman–Zola-style baseline solver.
//
//	go run ./examples/roadnet
package main

import (
	"fmt"
	"log"

	"dpspark"
	"dpspark/internal/baseline"
	"dpspark/internal/rdd"
)

func main() {
	const rows, cols = 24, 24
	g := dpspark.GridGraph(rows, cols, 1, 10, 11)
	fmt.Printf("road network: %d intersections, %d road segments\n", g.N, g.Edges())

	session := dpspark.NewSession(dpspark.Local(4))
	cfg := dpspark.Config{
		BlockSize:       96,
		Driver:          dpspark.IM,
		RecursiveKernel: true,
		RShared:         4,
		Threads:         4,
	}
	dist, stats, err := session.APSP(g, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("travel times solved in %v wall (modelled %v)\n", stats.Wall.Round(1e6), stats.Time)

	// A corner-to-corner route.
	src, dst := 0, g.N-1
	route := dpspark.ShortestPath(g, dist, src, dst)
	fmt.Printf("fastest route %d→%d takes %.1f, via %d intersections\n",
		src, dst, dist.At(src, dst), len(route))

	// Widest paths (bottleneck capacity) over the max-min semiring: build
	// the capacity matrix from the same topology.
	sr := dpspark.MaxMin()
	capMat := &dpspark.Matrix{N: g.N, Data: make([]float64, g.N*g.N)}
	for i := range capMat.Data {
		capMat.Data[i] = sr.Zero
	}
	for i := 0; i < g.N; i++ {
		capMat.Set(i, i, sr.One)
	}
	for _, es := range g.Adj {
		for _, e := range es {
			capMat.Set(e.From, e.To, 11-e.Weight) // fast roads are wide
		}
	}
	widest, _, err := dpspark.NewSession(dpspark.Local(4)).APSPSemiring(capMat, sr, dpspark.Config{BlockSize: 96})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("widest route %d→%d sustains capacity %.1f\n", src, dst, widest.At(src, dst))

	// Cross-check distances against the independent baseline solver
	// (Schoeneman–Zola style blocked FW with iterative kernels).
	ctx := rdd.NewContext(rdd.Conf{Cluster: dpspark.Local(4)})
	baseDist, baseStats, err := baseline.Solve(ctx, g.DistanceMatrix(), baseline.Config{BlockSize: 96})
	if err != nil {
		log.Fatal(err)
	}
	if diff := baseDist.MaxAbsDiff(dist); diff > 1e-9 {
		log.Fatalf("baseline disagrees: %v", diff)
	}
	fmt.Printf("baseline solver agrees ✓ (baseline modelled time %v vs this work %v)\n",
		baseStats.Time, stats.Time)
}
