#!/usr/bin/env bash
# Regenerate the committed benchmark trajectory files:
#
#   BENCH_kernels.json  — real-mode kernel microbenchmarks
#   BENCH_engine.json   — real-mode engine/baseline runs + model-mode
#                         headline experiments (Table I/II, Fig. 6)
#   BENCH_recovery.json — modelled recovery overhead under the standard
#                         seeded fault plan (crash-rate sweep, IM vs CB,
#                         speculation saving)
#   BENCH_store.json    — durable block store: checksummed spill + driver
#                         checkpoint round trips, real-run durability
#                         overhead and checkpoint–restart cost
#   BENCH_remote.json   — remote replica tier: replication overhead
#                         (off vs on) and restore-vs-recompute recovery
#                         cost under a seeded crash / remote outage
#
# Usage:
#   scripts/bench.sh              # full run (go test default benchtime)
#   BENCHTIME=1x scripts/bench.sh # CI smoke run: one iteration per bench
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1s}"

go build -o /tmp/benchjson ./cmd/benchjson

go test -run '^$' -bench 'BenchmarkKernel' -benchtime "$BENCHTIME" -benchmem . \
  | tee /dev/stderr | /tmp/benchjson -o BENCH_kernels.json

go test -run '^$' -bench 'BenchmarkEngine|BenchmarkBaseline|BenchmarkTable|BenchmarkFig6' \
  -benchtime "$BENCHTIME" -benchmem . \
  | tee /dev/stderr | /tmp/benchjson -o BENCH_engine.json

# Model-mode only (deterministic virtual time): one iteration is exact.
go test -run '^$' -bench 'BenchmarkRecovery' -benchtime 1x -benchmem . \
  | tee /dev/stderr | /tmp/benchjson -o BENCH_recovery.json

go test -run '^$' -bench 'BenchmarkStore|BenchmarkDurable' -benchtime "$BENCHTIME" -benchmem . \
  | tee /dev/stderr | /tmp/benchjson -o BENCH_store.json

# Remote-tier recovery is modelled time on a seeded fault plan: one
# iteration is exact, same as the recovery sweep above.
go test -run '^$' -bench 'BenchmarkRemote' -benchtime 1x -benchmem . \
  | tee /dev/stderr | /tmp/benchjson -o BENCH_remote.json

echo "wrote BENCH_kernels.json, BENCH_engine.json, BENCH_recovery.json, BENCH_store.json and BENCH_remote.json" >&2
