#!/usr/bin/env bash
# serve_crash_smoke.sh — end-to-end crash-safety smoke for `dpspark serve`.
#
# Phase 1 runs a mixed batch (both benches/drivers, one chaos-seeded job,
# idempotency keys on everything) to completion on a journaled server and
# records the reference checksums. Phase 2 replays the same batch on a
# fresh journal and SIGKILLs the server mid-flight. Phase 3 restarts on
# the surviving journal, waits for replay (/readyz), retries every
# submission under its original idempotency key, and gates on:
#   - every job terminal `done`;
#   - every checksum bit-identical to the uninterrupted reference;
#   - total job count == batch size (zero duplicate executions);
#   - the restart log reporting a journal replay.
#
# Env: DPSPARK_BIN (prebuilt binary; built here if unset),
#      WORK (scratch dir, kept for CI artifacts; mktemp -d if unset),
#      PORT (default 8932).
set -euo pipefail

BIN=${DPSPARK_BIN:-}
WORK=${WORK:-$(mktemp -d)}
PORT=${PORT:-8932}
BASE=127.0.0.1:$PORT
LOG=$WORK/serve.log
mkdir -p "$WORK"

if [ -z "$BIN" ]; then
  BIN=$WORK/dpspark
  go build -o "$BIN" ./cmd/dpspark
fi

KEYS=(smoke-a smoke-b smoke-c smoke-d)
SPECS=(
  '{"tenant":"alice","bench":"fw","driver":"im","n":256,"block":32,"seed":1,"priority":2,"idempotency_key":"smoke-a"}'
  '{"tenant":"bob","bench":"ge","driver":"cb","n":256,"block":32,"seed":2,"idempotency_key":"smoke-b"}'
  '{"tenant":"carol","bench":"fw","driver":"cb","n":256,"block":32,"seed":3,"chaos_seed":11,"chaos_crashes":1,"idempotency_key":"smoke-c"}'
  '{"tenant":"dave","bench":"ge","driver":"im","n":512,"block":64,"seed":4,"idempotency_key":"smoke-d"}'
)

SRV=""
start() { # start <journal-dir>
  "$BIN" serve -listen "$BASE" -journal "$1" -max-jobs 2 >> "$LOG" 2>&1 &
  SRV=$!
}

wait_ready() {
  for _ in $(seq 150); do
    curl -sf "$BASE/readyz" > /dev/null && return 0
    sleep 0.2
  done
  echo "FATAL: server never became ready" >&2
  return 1
}

submit() { # submit <spec-json> -> prints job id, asserts 202
  local out code
  out=$WORK/submit.json
  code=$(curl -s -o "$out" -w '%{http_code}' -X POST "$BASE/jobs" -d "$1")
  if [ "$code" != 202 ]; then
    echo "FATAL: submit returned $code: $(cat "$out")" >&2
    return 1
  fi
  jq -r .id "$out"
}

poll_done() { # poll_done <id> -> prints checksum once terminal done
  local st
  for _ in $(seq 400); do
    st=$(curl -sf "$BASE/jobs/$1" | jq -r .state)
    case "$st" in
      done) curl -sf "$BASE/jobs/$1/result" | jq -r .checksum; return 0 ;;
      failed|cancelled|quarantined)
        echo "FATAL: job $1 ended $st" >&2
        curl -sf "$BASE/jobs/$1" >&2 || true
        return 1 ;;
    esac
    sleep 0.3
  done
  echo "FATAL: job $1 never finished" >&2
  return 1
}

# ---- Phase 1: uninterrupted reference run -------------------------------
echo "== phase 1: reference run"
start "$WORK/journal-ref"
wait_ready
declare -A REF
for i in "${!SPECS[@]}"; do
  id=$(submit "${SPECS[$i]}")
  REF[${KEYS[$i]}]="$id"
done
declare -A REFSUM
for i in "${!SPECS[@]}"; do
  REFSUM[${KEYS[$i]}]=$(poll_done "${REF[${KEYS[$i]}]}")
  echo "   ${KEYS[$i]}: checksum ${REFSUM[${KEYS[$i]}]}"
done
kill -TERM "$SRV" && wait "$SRV"

# ---- Phase 2: same batch, SIGKILL mid-flight ----------------------------
echo "== phase 2: crash run (kill -9 mid-flight)"
start "$WORK/journal-crash"
wait_ready
for sp in "${SPECS[@]}"; do
  submit "$sp" > /dev/null
done
sleep 1 # let the batch get genuinely in flight (journal + checkpoints landing)
kill -9 "$SRV"
wait "$SRV" 2> /dev/null || true

# ---- Phase 3: restart, replay, retry, verify ----------------------------
echo "== phase 3: restart + recovery"
start "$WORK/journal-crash"
wait_ready
grep -q 'replayed:' "$LOG" || { echo "FATAL: restart log has no journal replay line" >&2; exit 1; }
# The client's crash response: retry every submission under its original
# idempotency key. Replayed jobs dedup; anything the crash erased is
# re-admitted fresh. Either way each key maps to exactly one job.
declare -A REC
for i in "${!SPECS[@]}"; do
  REC[${KEYS[$i]}]=$(submit "${SPECS[$i]}")
done
for k in "${KEYS[@]}"; do
  sum=$(poll_done "${REC[$k]}")
  if [ "$sum" != "${REFSUM[$k]}" ]; then
    echo "FATAL: $k recovered checksum $sum != reference ${REFSUM[$k]}" >&2
    exit 1
  fi
  echo "   $k: checksum $sum (bit-identical)"
done
count=$(curl -sf "$BASE/jobs" | jq length)
if [ "$count" != "${#SPECS[@]}" ]; then
  echo "FATAL: $count jobs after recovery + retries, want ${#SPECS[@]} (duplicate execution)" >&2
  exit 1
fi
kill -TERM "$SRV" && wait "$SRV"
grep -q 'drained:' "$LOG"
echo "serve-crash-smoke OK: ${#SPECS[@]} jobs recovered bit-identically, zero duplicates"
